//! Extension scenario: a **mobile adversary** walking a path through the
//! Fig. 6 layout.
//!
//! The paper's Figs. 11–13 sample 18 fixed locations; a realistic
//! adversary *moves* — entering through the far non-line-of-sight corner,
//! crossing the room, and ending at the paper's 20 cm near position. This
//! sweep samples that walk at uniform waypoints and, at each, measures
//! the battery-depletion attack (commercial-programmer power, as in
//! Fig. 11) with the shield absent and present, plus how often the shield
//! engages active jamming — i.e. where along the walk the attack starts
//! landing and where the shield starts reacting.
//!
//! This module is registry-only: every waypoint attack is
//! [`fig11::attack_once_at`] with an interpolated placement — no bespoke
//! runner machinery.

use crate::report::{Artifact, Series};
use hb_adversary::active::AttackerConfig;
use hb_channel::geometry::Placement;

use super::fig11::{self, AttackGoal};
use super::registry::{EvalCtx, Experiment};
use super::Effort;

/// Number of waypoints sampled along the walk.
pub const WAYPOINTS: usize = 10;

/// One waypoint of the walk.
#[derive(Debug, Clone, Copy)]
pub struct Waypoint {
    /// Distance walked from the start of the path, meters.
    pub walked_m: f64,
    /// Position in the room plane, meters.
    pub position_m: (f64, f64),
    /// Whether the spot has line of sight to the patient (the far end of
    /// the walk starts behind the NLOS corner, like locations 14–18).
    pub line_of_sight: bool,
}

impl Waypoint {
    /// Straight-line distance to the patient at the origin.
    pub fn distance_m(&self) -> f64 {
        (self.position_m.0.powi(2) + self.position_m.1.powi(2)).sqrt()
    }

    /// The channel-model placement for this waypoint.
    pub fn placement(&self, label: &str) -> Placement {
        if self.line_of_sight {
            Placement::los(label, self.position_m.0, self.position_m.1)
        } else {
            Placement::nlos(label, self.position_m.0, self.position_m.1)
        }
    }
}

/// The walk: from the NLOS far corner (27 m out, like locations 14–18)
/// diagonally across the room to the 20 cm near position of location 1.
/// Line of sight opens up once the adversary rounds the corner at ~14 m
/// (the Fig. 11 FCC-power range limit, for easy cross-reading).
pub fn path(n: usize) -> Vec<Waypoint> {
    let (x0, y0) = (25.0f64, 10.0f64);
    let (x1, y1) = (0.2f64, 0.0f64);
    let total = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1).max(1) as f64;
            let position_m = (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t);
            let mut w = Waypoint {
                walked_m: total * t,
                position_m,
                line_of_sight: false,
            };
            w.line_of_sight = w.distance_m() < 14.0;
            w
        })
        .collect()
}

/// Result of the mobile-adversary sweep.
#[derive(Debug, Clone)]
pub struct MobileResult {
    /// Per-waypoint rows: (distance to patient m, P\[success\] shield
    /// absent, P\[success\] shield present, P\[shield engages jamming\]).
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the walk. Waypoints fan out on the sweep runner; per-attempt
/// seeds derive from `(seed, waypoint, attempt)` before the fan-out, so
/// the sweep is thread-count-invariant.
pub fn run(effort: Effort, seed: u64) -> MobileResult {
    let cfg = AttackerConfig::commercial_programmer();
    let waypoints = path(WAYPOINTS);
    let rows: Vec<(f64, f64, f64, f64)> = crate::parallel::parallel_map(&waypoints, |w, wp| {
        let mut s_abs = 0usize;
        let mut s_pres = 0usize;
        let mut jams = 0usize;
        for a in 0..effort.attempts_per_location {
            let sd = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((w * 4096 + a) as u64);
            if fig11::attack_once_at(
                wp.placement("walker"),
                false,
                &cfg,
                AttackGoal::ElicitReply,
                sd,
            )
            .success
            {
                s_abs += 1;
            }
            let on = fig11::attack_once_at(
                wp.placement("walker"),
                true,
                &cfg,
                AttackGoal::ElicitReply,
                sd ^ 0xBEEF,
            );
            if on.success {
                s_pres += 1;
            }
            if on.jammed {
                jams += 1;
            }
        }
        let n = effort.attempts_per_location as f64;
        (
            wp.distance_m(),
            s_abs as f64 / n,
            s_pres as f64 / n,
            jams as f64 / n,
        )
    });

    let mut artifact = Artifact::new(
        "Extension: mobile adversary",
        "Battery-depletion attack along a walk from the NLOS far corner to 20 cm",
    );
    artifact.push_series(Series::new(
        "P(success), shield absent, vs distance (m)",
        rows.iter().map(|&(d, p, _, _)| (d, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "P(success), shield present, vs distance (m)",
        rows.iter().map(|&(d, _, p, _)| (d, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "P(shield engages jamming) vs distance (m)",
        rows.iter().map(|&(d, _, _, j)| (d, j)).collect(),
    ));
    // Rows run far -> near, so the first majority-success row is the
    // farthest point of the walk where the attack starts landing.
    let crossover = rows
        .iter()
        .find(|&&(_, p_abs, _, _)| p_abs > 0.5)
        .map(|&(d, _, _, _)| d);
    let max_present = rows.iter().map(|&(_, _, p, _)| p).fold(0.0, f64::max);
    artifact.note(format!(
        "shield absent: the walker's attack starts landing at {} (Fig. 11 puts the FCC-power limit at 14 m)",
        crossover.map_or("no waypoint".to_string(), |d| format!("{d:.1} m")),
    ));
    artifact.note(format!(
        "shield present: max success along the whole walk {max_present:.2} (paper: 0 everywhere)"
    ));
    MobileResult { rows, artifact }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct MobileExperiment;

impl Experiment for MobileExperiment {
    fn name(&self) -> &'static str {
        "mobile-adversary"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — adversary walking a path through the Fig. 6 layout"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_walks_from_nlos_far_to_los_near() {
        let p = path(WAYPOINTS);
        assert_eq!(p.len(), WAYPOINTS);
        assert!(p.first().unwrap().distance_m() > 20.0);
        assert!(!p.first().unwrap().line_of_sight);
        assert!(p.last().unwrap().distance_m() < 0.3);
        assert!(p.last().unwrap().line_of_sight);
        // Monotone approach.
        for pair in p.windows(2) {
            assert!(pair[1].distance_m() < pair[0].distance_m());
        }
    }

    #[test]
    fn walk_endpoints_behave_like_fig11() {
        let cfg = AttackerConfig::commercial_programmer();
        let p = path(WAYPOINTS);
        // At the end of the walk (20 cm): lands without the shield, is
        // jammed with it.
        let near = p.last().unwrap();
        let off = fig11::attack_once_at(
            near.placement("walker"),
            false,
            &cfg,
            AttackGoal::ElicitReply,
            2,
        );
        assert!(off.success, "20 cm attack must succeed with no shield");
        let on = fig11::attack_once_at(
            near.placement("walker"),
            true,
            &cfg,
            AttackGoal::ElicitReply,
            2,
        );
        assert!(!on.success, "shield must block the FCC-power walker");
        assert!(on.jammed, "shield must engage jamming at 20 cm");
        // At the start (27+ m NLOS): fails even without the shield.
        let far = p.first().unwrap();
        let far_off = fig11::attack_once_at(
            far.placement("walker"),
            false,
            &cfg,
            AttackGoal::ElicitReply,
            3,
        );
        assert!(!far_off.success, "28 m NLOS FCC-power attack must fail");
    }
}
