//! One module per table/figure of the paper's evaluation (§10–§11), plus
//! ablations and extension scenarios. Each module exposes a typed
//! `run(effort, seed)` entry point *and* a zero-sized
//! [`registry::Experiment`] entry struct; the [`registry`] lists every
//! entry so drivers (the `full_evaluation` example, the `hb_eval` CLI)
//! never hard-code experiment names.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig3`]  | Fig. 3 — IMD reply timing; no carrier sense |
//! | [`fig4`]  | Fig. 4 — FSK power profile of the IMD |
//! | [`fig5`]  | Fig. 5 — shaped vs constant jamming profile |
//! | [`fig7`]  | Fig. 7 — antenna-cancellation CDF (~32 dB) |
//! | [`fig8`]  | Fig. 8 — eavesdropper BER / shield PER vs jam power |
//! | [`fig9`]  | Fig. 9 — eavesdropper BER CDF over all locations |
//! | [`fig10`] | Fig. 10 — shield packet-loss CDF (~0.2%) |
//! | [`fig11`] | Fig. 11 — battery-depletion attack success probability |
//! | [`fig12`] | Fig. 12 — therapy-change attack success probability |
//! | [`fig13`] | Fig. 13 — 100×-power adversary + alarm |
//! | [`table1`]| Table 1 — Pthresh calibration |
//! | [`table2`]| Table 2 — coexistence & turn-around time |
//! | [`ablation`] | Design-choice ablations (shaped vs flat jamming, G sweep, turn-around, wearability, RF impairments) |
//! | [`battery`] | Extension: quantified battery-depletion attack |
//! | [`ward`] | Extension: two shielded patients in one ward |
//! | [`hospital`] | Extension: 50 shielded patients (100 devices) on one hospital floor |
//! | [`mobile`] | Extension: adversary walking a path through the layout |
//! | [`resilience`] | Extension: resilience matrix — ARQ + session recovery vs channel faults |
//! | [`defense_matrix`] | Extension: defense matrix — adversary suite × {shield, IMDfence, wake-up radio} |

pub mod ablation;
pub mod battery;
pub mod defense_matrix;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hospital;
pub mod mobile;
pub mod registry;
pub mod resilience;
pub mod table1;
pub mod table2;
pub mod ward;

use crate::scenario::Scenario;
use hb_channel::sim::Node;
use hb_imd::commands::Command;

/// Experiment sizing: `quick` keeps unit tests and CI fast; `full`
/// approaches the paper's sample counts.
///
/// The `ci_half_width`/`mc_max_trials` pair is the adaptive Monte-Carlo
/// knob ([`crate::montecarlo`]): statistical experiments stop growing
/// their sample as soon as every tracked confidence interval is at least
/// that tight, and never run past the trial cap — so `full` buys interval
/// precision, not a fixed (possibly wasteful) sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Effort {
    /// IMD packets observed per eavesdropper location (Figs. 8–10).
    pub packets_per_location: usize,
    /// Attack attempts per location per arm (Figs. 11–13).
    pub attempts_per_location: usize,
    /// Repetitions for calibration-style measurements (Fig. 7, Table 1).
    pub runs: usize,
    /// Target CI half-width for adaptive Monte-Carlo experiments.
    pub ci_half_width: f64,
    /// Trial-task cap per adaptive Monte-Carlo data point.
    pub mc_max_trials: usize,
}

impl Effort {
    /// Small but statistically meaningful (seconds per experiment).
    pub fn quick() -> Self {
        Effort {
            packets_per_location: 12,
            attempts_per_location: 10,
            runs: 40,
            ci_half_width: 0.05,
            mc_max_trials: 48,
        }
    }

    /// Paper-scale sampling (minutes per experiment).
    pub fn full() -> Self {
        Effort {
            packets_per_location: 100,
            attempts_per_location: 60,
            runs: 200,
            ci_half_width: 0.015,
            mc_max_trials: 1024,
        }
    }

    /// Minimum sizing for unit tests.
    pub fn tiny() -> Self {
        Effort {
            packets_per_location: 3,
            attempts_per_location: 3,
            runs: 8,
            ci_half_width: 0.12,
            mc_max_trials: 8,
        }
    }

    /// Looks up a preset by its CLI name (`quick`, `full`, `tiny`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "full" => Some(Self::full()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }
}

/// The seed the statistical unit tests run under: `HB_TEST_SEED` if set
/// (CI's seed-robustness job sweeps it to prove the CI-based assertions
/// hold for *any* seed, not one lucky stream), otherwise `default`.
#[doc(hidden)]
pub fn test_seed(default: u64) -> u64 {
    std::env::var("HB_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Drives one shield-relayed exchange: queues `cmd` on the shield, then
/// runs until the jam window closes (one command + reply + guard time).
///
/// Returns the number of blocks run, or
/// [`ExchangeError::NoShield`](crate::recovery::ExchangeError::NoShield)
/// when the scenario has no relay path — misconfiguration is an error
/// for the caller to surface, not a panic.
pub fn try_relay_one_exchange(
    scenario: &mut Scenario,
    extra: &mut [&mut dyn Node],
    cmd: Command,
) -> Result<u64, crate::recovery::ExchangeError> {
    let shield = scenario
        .shield
        .as_mut()
        .ok_or(crate::recovery::ExchangeError::NoShield)?;
    shield.queue_command(cmd);
    // Command (20.5 ms) + T2 (3.7 ms) + reply (≤21 ms) + jam-window tail
    // and margin: 60 ms covers the full exchange comfortably.
    let blocks = scenario.medium.blocks_for_duration(0.060);
    scenario.run_blocks(extra, blocks);
    Ok(blocks)
}

/// [`try_relay_one_exchange`] for callers that just built a shielded
/// scenario; panics if the shield is missing.
pub fn relay_one_exchange(
    scenario: &mut Scenario,
    extra: &mut [&mut dyn Node],
    cmd: Command,
) -> u64 {
    try_relay_one_exchange(scenario, extra, cmd).expect("relay_one_exchange needs a shield")
}
