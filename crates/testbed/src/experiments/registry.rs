//! The experiment registry: every reproduced figure, table, ablation, and
//! scenario as a first-class [`Experiment`] value behind one engine.
//!
//! Before this registry existed, each experiment module hand-rolled its
//! own `run(effort, seed)` entry point and `examples/full_evaluation.rs`
//! wired them up one macro call at a time; adding a scenario meant
//! touching four places. Now a scenario is one `impl Experiment` plus one
//! line in [`REGISTRY`], and every driver — the `full_evaluation`
//! example, the `hb_eval` CLI, the registry tests — walks the same list.
//!
//! The engine owns the cross-cutting concerns:
//!
//! * **Effort scaling** — [`EvalCtx`] carries one [`Effort`] preset; an
//!   experiment never re-interprets sizing on its own (callers pick a
//!   preset or defer to [`Experiment::default_effort`]).
//! * **Seed derivation** — [`EvalCtx::seed`] is the single master seed;
//!   experiments derive every per-task seed from it *before* any
//!   fan-out, which is what keeps results bit-identical at any thread
//!   count (see [`crate::parallel`]).
//! * **Artifact plumbing** — [`run_one`] runs an experiment and pairs the
//!   [`Artifact`] with its canonical `results/` file stem
//!   ([`file_stem`]), so every driver names output files identically.

use super::{ablation, battery, defense_matrix, fig10, fig11, fig12, fig13};
use super::{fig3, fig4, fig5, fig7, fig8, fig9};
use super::{hospital, mobile, resilience, table1, table2, ward, Effort};
use crate::checkpoint::{self, RunCtl, RunHealth};
use crate::report::Artifact;
use std::sync::Arc;

/// The canonical default master seed shared by every driver
/// (`full_evaluation`, `hb_eval`): SIGCOMM'11 started August 15, 2011.
pub const DEFAULT_SEED: u64 = 20110815;

/// Everything an experiment needs to run: the effort preset and the
/// master seed all per-task seeds derive from.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// Sample-count preset.
    pub effort: Effort,
    /// Master seed; two runs with the same `(effort, seed)` produce
    /// bit-identical artifacts at any thread count.
    pub seed: u64,
}

impl EvalCtx {
    /// Creates a context.
    pub fn new(effort: Effort, seed: u64) -> Self {
        EvalCtx { effort, seed }
    }
}

/// A registered experiment: one reproduced figure/table/ablation or an
/// extension scenario.
///
/// Implementations are zero-sized entry structs living next to the code
/// they run; the engine only ever sees this interface.
pub trait Experiment: Sync {
    /// Registry name: unique, kebab-case, stable across PRs (it is the
    /// CLI argument and part of the results file contract).
    fn name(&self) -> &'static str;

    /// What this experiment reproduces, for `--list` output and docs
    /// (paper section/figure, or the extension it quantifies).
    fn reproduces(&self) -> &'static str;

    /// The effort preset used when the caller does not pick one.
    /// Experiments whose runtime does not scale with sampling (pure
    /// spectral measurements) override this to [`Effort::tiny`].
    fn default_effort(&self) -> Effort {
        Effort::quick()
    }

    /// Runs the experiment and renders its artifact.
    fn run(&self, ctx: &EvalCtx) -> Artifact;
}

/// Every experiment, in the canonical evaluation order (the order
/// `full_evaluation` reports them and `results/evaluation.txt` lists
/// them): the paper's figures and tables first, then the ablations, then
/// the extension scenarios.
pub static REGISTRY: &[&dyn Experiment] = &[
    &fig3::Fig3Experiment,
    &fig4::Fig4Experiment,
    &fig5::Fig5Experiment,
    &fig7::Fig7Experiment,
    &fig8::Fig8Experiment,
    &fig9::Fig9Experiment,
    &fig10::Fig10Experiment,
    &fig11::Fig11Experiment,
    &fig12::Fig12Experiment,
    &fig13::Fig13Experiment,
    &table1::Table1Experiment,
    &table2::Table2Experiment,
    &ablation::JamShapeExperiment,
    &ablation::CancellationExperiment,
    &ablation::TurnaroundExperiment,
    &ablation::WearabilityExperiment,
    &ablation::RobustnessExperiment,
    &battery::BatteryExperiment,
    &ward::WardExperiment,
    &hospital::HospitalFloorExperiment,
    &mobile::MobileExperiment,
    &crate::crosstraffic::CrossTrafficExperiment,
    &resilience::ResilienceExperiment,
    &defense_matrix::DefenseMatrixExperiment,
];

/// The full registry, in canonical order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    REGISTRY
}

/// Looks up an experiment by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

/// Runs one experiment and returns its artifact together with the
/// canonical `results/` file stem (shared by every driver, so CSV and
/// JSON artifacts always land under the same names).
pub fn run_one(exp: &dyn Experiment, ctx: &EvalCtx) -> (Artifact, String) {
    let artifact = exp.run(ctx);
    let stem = file_stem(&artifact.id);
    (artifact, stem)
}

/// [`run_one`] under a crash-safe run control: installs `ctl` as the
/// process's active [`RunCtl`] for the duration of the run (the adaptive
/// Monte-Carlo engine picks it up for journaling, resume, quarantine,
/// and the deadline), then stamps the resulting health onto the artifact
/// — but only when the run was degraded or truncated, so healthy
/// artifacts stay byte-identical to [`run_one`]'s.
pub fn run_one_with(
    exp: &dyn Experiment,
    ctx: &EvalCtx,
    ctl: &Arc<RunCtl>,
) -> (Artifact, String, RunHealth) {
    let mut artifact = {
        let _guard = checkpoint::install(ctl.clone());
        exp.run(ctx)
    };
    let health = ctl.health();
    if health.flagged() {
        artifact.health = Some(health);
    }
    let stem = file_stem(&artifact.id);
    (artifact, stem, health)
}

/// The `results/` file stem for an artifact id: lowercased, spaces to
/// underscores, colons dropped (`"Figure 8"` → `"figure_8"`,
/// `"Ablation: jam shaping"` → `"ablation_jam_shaping"`).
pub fn file_stem(id: &str) -> String {
    id.to_lowercase().replace(' ', "_").replace(':', "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_resolves_names_and_rejects_unknown() {
        assert_eq!(find("fig9").unwrap().name(), "fig9");
        assert_eq!(find("ward-multi-imd").unwrap().name(), "ward-multi-imd");
        assert!(find("fig9 ").is_none());
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn file_stems_match_the_historical_results_layout() {
        assert_eq!(file_stem("Figure 8"), "figure_8");
        assert_eq!(file_stem("Table 1"), "table_1");
        assert_eq!(file_stem("Ablation: jam shaping"), "ablation_jam_shaping");
        assert_eq!(
            file_stem("Extension: battery depletion"),
            "extension_battery_depletion"
        );
    }

    #[test]
    fn registry_is_in_canonical_evaluation_order() {
        let names: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        assert_eq!(&names[..3], &["fig3", "fig4", "fig5"]);
        assert_eq!(names[10], "table1");
        assert_eq!(*names.last().unwrap(), "defense-matrix");
    }
}
