//! Extension: the resilience matrix — exchange delivery under
//! deterministic channel faults, fault intensity × {no-ARQ, ARQ}.
//!
//! The paper evaluates the shield on a clean bench channel; a ward is
//! not one. This experiment injects calibrated adversity through the
//! [`FaultPlan`] machinery — seeded burst dropouts (deep fades that
//! silently erase frame segments) plus, for the adversary arm, timed
//! shield outages — and measures what the link layer of PR 9 buys:
//!
//! * **Delivery**: P(command exchange completes), no-ARQ (one shot, a
//!   delivery verdict, nothing else) vs ARQ (reply timeout, deterministic
//!   backoff, bounded retries, live session recovery). The acceptance bar
//!   is ARQ ≥ 0.99 at fault intensities where the bare link visibly
//!   degrades.
//! * **Latency**: mean transmission attempts per delivered exchange — the
//!   retry cost the resilience is bought with.
//! * **Battery**: mean IMD radio energy per exchange (every retry makes
//!   the implant decode and reply again — resilience must not become a
//!   self-inflicted battery-depletion attack).
//! * **Security**: P(forged therapy command executes) with the attacker
//!   at 20 cm and the shield suffering periodic outage windows that
//!   overlap the forged frame — the shield's fail-safe (outages shorter
//!   than a command frame leave the resumed jamming enough of the frame
//!   to break) must hold in *every* cell, including mid-outage.
//!
//! Every cell runs on the adaptive Monte-Carlo engine with per-cell
//! master seeds derived before the fan-out, so the matrix is
//! bit-identical at any thread count.

use crate::montecarlo::{self, Estimate, McConfig};
use crate::report::{Artifact, Series};
use crate::scenario::{ImdModel, ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::fault::FaultPlan;
use hb_channel::sim::Node;
use hb_imd::arq::ArqConfig;
use hb_imd::commands::Command;
use hb_imd::therapy::TherapyParams;
use hb_mics::session::SessionConfig;

use super::Effort;

/// Fault-intensity grid (0 = clean channel, 1 = heaviest calibrated
/// loss).
pub const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// Burst-dropout start hazard per block at intensity 1.0. Calibrated
/// (measured at 40 seeds) so a single 60 ms attempt window survives with
/// probability ~0.55–0.65: low enough that the bare link visibly
/// degrades, high enough that six bounded retries push ARQ delivery past
/// 0.99. The fades must be deep — the shield and implant sit centimeters
/// apart, so the relay link carries tens of dB of margin and a 30 dB
/// fade does not even dent it; 60 dB pushes the frame under the noise
/// floor.
const DROPOUT_START_PROB_MAX: f64 = 1.0e-3;

/// Transmission attempts the default ARQ budget allows.
const MAX_ATTEMPTS: u64 = 6;

/// The channel-fault plan at `intensity` ∈ [0, 1]: 60 dB burst fades,
/// 16 blocks (~0.85 ms) long, start hazard scaled linearly.
pub fn fault_plan(intensity: f64) -> FaultPlan {
    if intensity <= 0.0 {
        return FaultPlan::none();
    }
    FaultPlan {
        dropout_start_prob: DROPOUT_START_PROB_MAX * intensity,
        dropout_len_blocks: 16,
        dropout_depth_db: 60.0,
        ..FaultPlan::none()
    }
}

/// [`fault_plan`] plus the adversary arm's shield outage: an 8 ms
/// transmit-chain brown-out every 100 ms starting at 5 ms — timed to
/// overlap the forged command frame (20.5 ms), so the attack lands while
/// the shield is part-way silenced.
pub fn fault_plan_with_outage(intensity: f64) -> FaultPlan {
    FaultPlan {
        outage_start_s: 0.005,
        outage_len_s: 0.008,
        outage_period_s: 0.100,
        ..fault_plan(intensity)
    }
}

/// One resilient-exchange trial: fresh scenario (fresh shadowing, model
/// alternated by seed parity as everywhere else), faults at `intensity`,
/// one `Interrogate` exchange under the given ARQ policy. Returns
/// `(delivered, attempts, imd_radio_energy_j)`.
fn exchange_trial(intensity: f64, arq: ArqConfig, seed: u64) -> (bool, u32, f64) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        ImdModel::VirtuosoIcd
    } else {
        ImdModel::ConcertoCrt
    };
    cfg.fault = fault_plan(intensity);
    let mut scenario = ScenarioBuilder::new(cfg).build();
    let outcome = crate::recovery::run_arq_exchange(
        &mut scenario,
        &mut [],
        Command::Interrogate,
        arq,
        SessionConfig::default(),
    );
    let energy = scenario.imd.battery().radio_energy_j();
    match outcome {
        Ok(out) => (true, out.attempts, energy),
        Err(crate::recovery::ExchangeError::Exhausted { attempts }) => (false, attempts, energy),
        Err(crate::recovery::ExchangeError::NoShield) => {
            unreachable!("paper scenarios always carry a shield")
        }
    }
}

/// One forged-command trial for the security row: attacker with a
/// commercial programmer at 20 cm (location 1), faults at `intensity`
/// *plus* the periodic shield outage overlapping the forged frame.
/// Returns true iff the IMD changed therapy — the outcome that must
/// never happen.
fn forged_trial(intensity: f64, seed: u64) -> bool {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        ImdModel::VirtuosoIcd
    } else {
        ImdModel::ConcertoCrt
    };
    cfg.fault = fault_plan_with_outage(intensity);
    let mut builder = ScenarioBuilder::new(cfg);
    let atk_ant = builder.add_at(
        crate::layout::Fig6Layout::paper()
            .location(1)
            .placement("attacker"),
    );
    let mut scenario = builder.build();
    let atk_cfg = AttackerConfig::commercial_programmer();
    let mut attacker = ActiveAttacker::new(atk_cfg, atk_ant);
    let mut p = TherapyParams::nominal();
    p.rate_ppm = 150;
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    // Fire so the frame (0.2–20.7 ms) straddles the 5–13 ms outage.
    let start = scenario.medium.tick() + 64;
    attacker.send_forged_command(start, channel, serial, Command::SetTherapy(p));
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.090);
    scenario.imd.stats.therapy_changes > 0
}

/// One matrix cell's estimates.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Fault intensity.
    pub intensity: f64,
    /// P(delivery) without retries.
    pub no_arq: Estimate,
    /// P(delivery) with the full ARQ + recovery stack.
    pub arq: Estimate,
    /// Mean transmission attempts per ARQ exchange (latency proxy).
    pub attempts: Estimate,
    /// Mean IMD radio energy per ARQ exchange, millijoules.
    pub energy_mj: Estimate,
    /// P(forged therapy command executes) under faults + shield outages.
    pub forged: Estimate,
}

/// Runs one intensity's cells single-worker (the matrix fans out across
/// intensities; master seeds are pre-derived by the caller).
fn run_cell(intensity: f64, effort: &Effort, seeds: [u64; 4]) -> Cell {
    let mc = McConfig::from_effort(effort).with_max_trials(effort.attempts_per_location);
    let no_arq = montecarlo::adaptive_proportion_with(1, &mc, seeds[0], |s| {
        (
            exchange_trial(intensity, ArqConfig::default().without_retries(), s).0 as u64,
            1,
        )
    });
    // Delivery and attempts pooled from the same trials (fig8-style
    // multi-proportion pooling: attempts normalized by the budget).
    let arq_run = montecarlo::adaptive_proportions_with::<_, 2>(1, &mc, seeds[1], |s| {
        let (delivered, attempts, _) = exchange_trial(intensity, ArqConfig::default(), s);
        [(delivered as u64, 1), (attempts as u64, MAX_ATTEMPTS)]
    });
    let arq = arq_run.estimates[0];
    let a = arq_run.estimates[1];
    let attempts = Estimate {
        mean: a.mean * MAX_ATTEMPTS as f64,
        ci_lo: a.ci_lo * MAX_ATTEMPTS as f64,
        ci_hi: a.ci_hi * MAX_ATTEMPTS as f64,
        n: a.n,
    };
    // Battery: a small fixed sample is enough for a mean with the
    // bootstrap interval reported alongside.
    let energy_mc = mc.with_max_trials((effort.attempts_per_location / 2).max(3));
    let energy_mj = montecarlo::adaptive_mean_with(1, &energy_mc, seeds[2], |s| {
        exchange_trial(intensity, ArqConfig::default(), s).2 * 1e3
    });
    let forged = montecarlo::adaptive_proportion_with(1, &mc, seeds[3], |s| {
        (forged_trial(intensity, s) as u64, 1)
    });
    Cell {
        intensity,
        no_arq,
        arq,
        attempts,
        energy_mj,
        forged,
    }
}

/// Result of the resilience-matrix experiment.
#[derive(Debug, Clone)]
pub struct ResilienceResult {
    /// One cell per intensity, in [`INTENSITIES`] order.
    pub cells: Vec<Cell>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the matrix: intensities fan out on the sweep runner, each
/// intensity's four cells run single-worker on pre-derived seeds.
pub fn run(effort: Effort, seed: u64) -> ResilienceResult {
    let cells: Vec<Cell> = crate::parallel::parallel_map_n(INTENSITIES.len(), |i| {
        let seeds = [
            montecarlo::trial_seed(seed ^ 0x004E_0A12, i as u64),
            montecarlo::trial_seed(seed ^ 0x00A4_0051, i as u64),
            montecarlo::trial_seed(seed ^ 0x00BA_77E4, i as u64),
            montecarlo::trial_seed(seed ^ 0x00F0_46ED, i as u64),
        ];
        run_cell(INTENSITIES[i], &effort, seeds)
    });
    let mut artifact = Artifact::new(
        "Extension: resilience matrix",
        "Exchange delivery, retry cost, battery cost, and forged-command outcomes \
         vs channel-fault intensity — bare link vs ARQ + session recovery",
    );
    let xs = |f: fn(&Cell) -> Estimate| -> Vec<(f64, Estimate)> {
        cells.iter().map(|c| (c.intensity, f(c))).collect()
    };
    artifact.push_series(Series::from_estimates(
        "delivered, no ARQ",
        &xs(|c| c.no_arq),
    ));
    artifact.push_series(Series::from_estimates(
        "delivered, ARQ + recovery",
        &xs(|c| c.arq),
    ));
    artifact.push_series(Series::from_estimates(
        "attempts per exchange (ARQ)",
        &xs(|c| c.attempts),
    ));
    artifact.push_series(Series::from_estimates(
        "IMD radio energy per exchange, mJ (ARQ)",
        &xs(|c| c.energy_mj),
    ));
    artifact.push_series(Series::from_estimates(
        "forged command success (shield outages)",
        &xs(|c| c.forged),
    ));
    let top = cells.last().expect("non-empty grid");
    let worst_forged = cells.iter().map(|c| c.forged.ci_hi).fold(0.0, f64::max);
    artifact.note(format!(
        "at intensity {:.2}: bare link delivers {:.2}, ARQ delivers {:.2} \
         (mean {:.2} attempts, {:.3} mJ IMD radio energy per exchange)",
        top.intensity, top.no_arq.mean, top.arq.mean, top.attempts.mean, top.energy_mj.mean
    ));
    artifact.note(format!(
        "forged therapy command under faults + 8 ms shield outages overlapping the frame: \
         success 0 in every cell (worst-case upper confidence bound {worst_forged:.2})"
    ));
    ResilienceResult { cells, artifact }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct ResilienceExperiment;

impl crate::experiments::registry::Experiment for ResilienceExperiment {
    fn name(&self) -> &'static str {
        "resilience-matrix"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — ARQ + session recovery vs channel faults (delivery, latency, battery, security)"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_delivers_first_try() {
        let (delivered, attempts, energy) =
            exchange_trial(0.0, ArqConfig::default(), super::super::test_seed(61));
        assert!(delivered);
        assert_eq!(attempts, 1);
        assert!(energy > 0.0, "the reply must cost the IMD energy");
    }

    #[test]
    fn arq_outdelivers_bare_link_under_heavy_faults() {
        // The acceptance claim at matrix scale, shrunk to CI size but
        // still seed-robust: at intensity 1.0 the bare link's delivery
        // interval must fall visibly below certainty, while ARQ keeps
        // delivering. Calibration puts per-attempt survival ~0.5–0.7 and
        // ARQ failure ~1e-2 or less, so with 24/12 trials these bounds
        // hold for any HB_TEST_SEED.
        let seed = super::super::test_seed(67);
        let mc = McConfig {
            initial_trials: 24,
            max_trials: 24,
            target_half_width: 0.01,
            z: hb_dsp::stats::Z_95,
            bootstrap_resamples: 50,
        };
        let no_arq = montecarlo::adaptive_proportion_with(1, &mc, seed, |s| {
            (
                exchange_trial(1.0, ArqConfig::default().without_retries(), s).0 as u64,
                1,
            )
        });
        assert!(
            no_arq.below(0.98),
            "bare link must visibly degrade at intensity 1.0: {no_arq:?}"
        );
        let mc_arq = McConfig {
            initial_trials: 12,
            max_trials: 12,
            ..mc
        };
        let arq = montecarlo::adaptive_proportion_with(1, &mc_arq, seed ^ 0x77, |s| {
            (exchange_trial(1.0, ArqConfig::default(), s).0 as u64, 1)
        });
        assert!(
            arq.mean >= 0.9,
            "ARQ must deliver despite the faults: {arq:?}"
        );
        assert!(arq.mean > no_arq.mean, "ARQ must beat the bare link");
    }

    #[test]
    fn forged_command_blocked_mid_outage() {
        // Direct form of the security row: outage windows overlap the
        // forged frame, the therapy must not change, and the exposure
        // must be *counted* (the outage really did silence due jamming).
        let seed = super::super::test_seed(71);
        assert!(
            !forged_trial(1.0, seed),
            "forged therapy command must not execute mid-outage"
        );
        // Accounting check on a fixed scenario driven the same way.
        let mut cfg = ScenarioConfig::paper(seed);
        cfg.fault = fault_plan_with_outage(0.0);
        let mut builder = ScenarioBuilder::new(cfg);
        let atk_ant = builder.add_at(
            crate::layout::Fig6Layout::paper()
                .location(1)
                .placement("attacker"),
        );
        let mut scenario = builder.build();
        let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
        let serial = scenario.imd.config().serial;
        let channel = scenario.channel();
        let start = scenario.medium.tick() + 64;
        attacker.send_forged_command(start, channel, serial, Command::Interrogate);
        scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.090);
        let shield = scenario.shield.as_ref().unwrap();
        assert!(shield.stats.outage_blocks > 0, "outage windows must occur");
        assert!(
            shield.stats.outage_exposed_blocks > 0,
            "the outage must overlap due jamming (that is the point of the timing)"
        );
        assert_eq!(
            scenario.imd.stats.responses_sent, 0,
            "no reply may leak through the outage"
        );
    }

    #[test]
    fn tiny_matrix_is_deterministic() {
        let a = run(Effort::tiny(), 99);
        let b = run(Effort::tiny(), 99);
        assert_eq!(a.artifact.to_csv(), b.artifact.to_csv());
        assert_eq!(a.cells.len(), INTENSITIES.len());
    }
}
