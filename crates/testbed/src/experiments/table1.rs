//! Table 1: calibrating `Pthresh` — the adversarial RSSI at the shield
//! that elicits an IMD response despite jamming.
//!
//! §10.1(c): fix the adversary at location 1, sweep its transmit power,
//! and record the RSSI at the shield's receive antenna for every attempt
//! that succeeded in triggering the IMD. The alarm threshold is then set
//! 3 dB below the minimum successful RSSI. Paper values: min −11.1 dBm,
//! average −4.5 dBm, σ 3.5 dBm (absolute values depend on the testbed's
//! near-field coupling; ours differ by a fixed offset — see DESIGN.md —
//! while the procedure and the min/avg/σ structure reproduce).

use crate::report::{stat_table, Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::sim::Node;
use hb_dsp::stats::RunningStats;
use hb_dsp::units::db_from_ratio;
use hb_imd::commands::Command;
use hb_phy::fsk::FskParams;

use super::Effort;

/// Result of the Table 1 calibration.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// RSSI (dBm, at the shield) of every successful trigger.
    pub successful_rssi_dbm: Vec<f64>,
    /// Minimum successful RSSI (Pthresh before the 3 dB guard).
    pub min_dbm: f64,
    /// Mean successful RSSI.
    pub avg_dbm: f64,
    /// Standard deviation.
    pub std_dbm: f64,
    /// The recommended alarm threshold: min − 3 dB.
    pub recommended_pthresh_dbm: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// One attempt at a given adversary power; returns `Some(rssi at shield)`
/// if the IMD responded despite jamming.
pub fn attempt(tx_power_dbm: f64, seed: u64) -> Option<f64> {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(seed));
    let atk_ant = builder.add_at_location(1, "attacker");
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(
        AttackerConfig {
            tx_power_dbm,
            fsk: FskParams::mics_default(),
        },
        atk_ant,
    );
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    attacker.send_forged_command(64, channel, serial, Command::Interrogate);
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.090);

    if scenario.imd.stats.responses_sent > 0 {
        // Ground-truth RSSI at the shield's receive antenna.
        let shield = scenario.shield.as_ref().unwrap();
        let gain = scenario.medium.gain(atk_ant, shield.rx_antenna());
        Some(tx_power_dbm + db_from_ratio(gain.norm_sq()))
    } else {
        None
    }
}

/// Runs the power sweep.
pub fn run(effort: Effort, seed: u64) -> Table1Result {
    let mut stats = RunningStats::new();
    let mut rssi = Vec::new();
    // Sweep from below the success threshold to well above it.
    let reps = (effort.runs / 20).max(2);
    let mut p = -12.0;
    while p <= 14.0 {
        for r in 0..reps {
            let s = seed.wrapping_add((p * 10.0) as i64 as u64 ^ (r as u64) << 33);
            if let Some(v) = attempt(p, s) {
                stats.push(v);
                rssi.push(v);
            }
        }
        p += 2.0;
    }
    let (min, avg, std) = if stats.count() > 0 {
        (stats.min(), stats.mean(), stats.std_dev())
    } else {
        (f64::NAN, f64::NAN, f64::NAN)
    };
    let mut artifact = Artifact::new(
        "Table 1",
        "Pthresh: adversarial RSSI at the shield that elicits IMD responses despite jamming",
    );
    artifact.push_series(Series::new(
        "successful-trigger RSSI (dBm), in sweep order",
        rssi.iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect(),
    ));
    artifact.note(stat_table(
        "Adversary RSSI that elicits IMD response:",
        &[
            ("Minimum (dBm)", min),
            ("Average (dBm)", avg),
            ("Std deviation (dB)", std),
        ],
    ));
    artifact.note(format!(
        "paper: min -11.1 / avg -4.5 / std 3.5 dBm; Pthresh set 3 dB below min -> {:.1} dBm",
        min - 3.0
    ));
    Table1Result {
        successful_rssi_dbm: rssi,
        min_dbm: min,
        avg_dbm: avg,
        std_dbm: std,
        recommended_pthresh_dbm: min - 3.0,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Table1Experiment;

impl crate::experiments::registry::Experiment for Table1Experiment {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn reproduces(&self) -> &'static str {
        "Table 1 — Pthresh calibration"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_adversary_fails_strong_succeeds() {
        // Well below the threshold: jamming wins.
        assert!(attempt(-20.0, 3).is_none());
        // Far above it: capture at the IMD despite jamming.
        let rssi = attempt(10.0, 3);
        assert!(rssi.is_some(), "a +10 dBm adversary at 20 cm must win");
        // RSSI at shield ≈ tx − 27 dB near-field floor.
        let v = rssi.unwrap();
        assert!((v - (10.0 - 27.0)).abs() < 4.0, "rssi {v}");
    }
}
