//! Table 2: coexistence with legitimate users of the band.
//!
//! §11: a transmitter alternates between (a) GMSK radiosonde packets not
//! intended for the IMD and (b) unauthorized IMD commands. Paper result:
//! the shield jammed **zero** cross-traffic packets and **all** detected
//! IMD-addressed packets, and took 270 ± 23 µs (software) to stop jamming
//! after the adversary's signal ended.

use crate::crosstraffic::CrossTrafficNode;
use crate::report::{stat_table, Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::medium::Tick;
use hb_channel::sim::Node;
use hb_dsp::stats::RunningStats;
use hb_imd::commands::Command;
use hb_shield::shield::ShieldEventKind;

use super::Effort;

/// Result of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Cross-traffic packets transmitted / jammed.
    pub cross_sent: usize,
    /// Cross-traffic packets the shield jammed (must be 0).
    pub cross_jammed: usize,
    /// IMD-addressed packets transmitted / jammed.
    pub imd_sent: usize,
    /// IMD-addressed packets the shield jammed.
    pub imd_jammed: usize,
    /// Turn-around times, seconds.
    pub turnaround_mean_s: f64,
    /// Turn-around standard deviation, seconds.
    pub turnaround_std_s: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Jam intervals (start, end) per channel from the shield's event log.
fn jam_intervals(events: &[hb_shield::shield::ShieldEvent]) -> Vec<(Tick, Tick, usize)> {
    let mut open: std::collections::HashMap<usize, Tick> = std::collections::HashMap::new();
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            ShieldEventKind::JamStart { channel, .. } => {
                open.entry(channel).or_insert(e.tick);
            }
            ShieldEventKind::JamEnd { channel } => {
                if let Some(start) = open.remove(&channel) {
                    out.push((start, e.tick, channel));
                }
            }
            _ => {}
        }
    }
    for (ch, start) in open {
        out.push((start, Tick::MAX, ch));
    }
    out
}

fn overlaps(a: (Tick, Tick), b: (Tick, Tick)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Runs the alternating cross-traffic / attack-traffic sequence from a set
/// of locations.
pub fn run(effort: Effort, seed: u64) -> Table2Result {
    let mut cross_sent = 0;
    let mut cross_jammed = 0;
    let mut imd_sent = 0;
    let mut imd_jammed = 0;
    let mut turnaround = RunningStats::new();

    let pairs = (effort.attempts_per_location / 2).max(2);
    let locations = [1usize, 4, 8, 13];
    for (li, &loc) in locations.iter().enumerate() {
        for p in 0..pairs {
            let s = seed.wrapping_add((li * 1000 + p) as u64 * 7919);
            let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(s));
            let node_ant = builder.add_at_location(loc, "mixed-tx");
            let mut scenario = builder.build();
            let channel = scenario.channel();
            let serial = scenario.imd.config().serial;

            // One radiosonde packet…
            let mut sonde = CrossTrafficNode::new(node_ant, hb_mics::fcc_eirp_limit_dbm());
            sonde.send_packet(64, channel, 60);
            let sonde_end = sonde.last_end().unwrap();
            // …then one IMD-addressed command from the same spot.
            let mut attacker =
                ActiveAttacker::new(AttackerConfig::commercial_programmer(), node_ant);
            let cmd_start = sonde_end + scenario.medium.blocks_for_duration(0.005) * 16;
            attacker.send_forged_command(cmd_start, channel, serial, Command::Interrogate);
            let cmd_interval = (cmd_start, attacker.last_tx_end().unwrap());

            scenario.run_seconds(
                &mut [&mut sonde as &mut dyn Node, &mut attacker as &mut dyn Node],
                0.120,
            );

            let shield = scenario.shield.as_ref().unwrap();
            let jams = jam_intervals(&shield.events);
            cross_sent += 1;
            if jams
                .iter()
                .any(|&(s0, e0, ch)| ch == channel && overlaps((s0, e0), (64, sonde_end)))
            {
                cross_jammed += 1;
            }
            imd_sent += 1;
            if jams
                .iter()
                .any(|&(s0, e0, ch)| ch == channel && overlaps((s0, e0), cmd_interval))
            {
                imd_jammed += 1;
            }
            for &t in &shield.stats.turnaround_s {
                turnaround.push(t);
            }
        }
    }

    let mut artifact = Artifact::new(
        "Table 2",
        "Coexistence: jamming behaviour with radiosonde cross-traffic, and turn-around time",
    );
    artifact.push_series(Series::new(
        "probability of jamming",
        vec![
            (0.0, cross_jammed as f64 / cross_sent.max(1) as f64),
            (1.0, imd_jammed as f64 / imd_sent.max(1) as f64),
        ],
    ));
    artifact.note(stat_table(
        "Jamming probability (x=0 cross-traffic, x=1 IMD-addressed):",
        &[
            (
                "Cross-traffic",
                cross_jammed as f64 / cross_sent.max(1) as f64,
            ),
            (
                "Packets that trigger IMD",
                imd_jammed as f64 / imd_sent.max(1) as f64,
            ),
        ],
    ));
    artifact.note(format!(
        "turn-around {:.0} ± {:.0} µs over {} jam events (paper: 270 ± 23 µs)",
        turnaround.mean() * 1e6,
        turnaround.std_dev() * 1e6,
        turnaround.count()
    ));
    Table2Result {
        cross_sent,
        cross_jammed,
        imd_sent,
        imd_jammed,
        turnaround_mean_s: turnaround.mean(),
        turnaround_std_s: turnaround.std_dev(),
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Table2Experiment;

impl crate::experiments::registry::Experiment for Table2Experiment {
    fn name(&self) -> &'static str {
        "table2"
    }
    fn reproduces(&self) -> &'static str {
        "Table 2 — coexistence + turn-around time"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_traffic_never_jammed_commands_always() {
        let r = run(Effort::tiny(), 77);
        assert_eq!(r.cross_jammed, 0, "shield jammed legitimate cross-traffic");
        assert_eq!(
            r.imd_jammed, r.imd_sent,
            "shield missed IMD-addressed packets"
        );
        // Software turn-around ≈ 270 µs (plus one block of detection
        // latency).
        assert!(
            r.turnaround_mean_s > 150e-6 && r.turnaround_mean_s < 500e-6,
            "turnaround {} µs",
            r.turnaround_mean_s * 1e6
        );
    }
}
