//! Extension scenario: a hospital ward with **two shielded patients** in
//! one medium, sharing one MICS channel.
//!
//! The paper evaluates one shield in isolation; a ward has several worn
//! shields on the air at once. Each shield cancels only its *own*
//! jamming (the antidote is built from its own transmit chain, §5), so a
//! neighbouring shield is uncancellable interference — and worse, it is
//! *adversary-shaped* interference: a loud co-channel signal during the
//! shield's own command transmission is exactly what §7(d) tells it to
//! treat as an overwrite attack.
//!
//! Two access patterns, swept over bed separation:
//!
//! * **Collided** — both shields interrogate simultaneously. Each
//!   shield's concurrent-signal guard fires on the other's command, both
//!   abort into active jamming, and each then holds the other's jamming
//!   above its busy threshold: a mutual-jamming deadlock that starves
//!   both relays at any in-ward separation.
//! * **Staggered** — the shields take turns (one full exchange window
//!   apart, as a ward coordinator or MICS listen-before-talk would
//!   enforce). Both relays work and confidentiality holds: to an
//!   eavesdropper between the beds every reply is still jammed to
//!   BER ≈ 0.5.
//!
//! This module is registry-only: it composes [`ScenarioBuilder`] (with
//! [`ScenarioBuilder::add_patient`]) and `Scenario::run_blocks` — no
//! bespoke runner machinery.

use crate::report::{Artifact, Series};
use crate::scenario::{ImdModel, ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_channel::geometry::Placement;
use hb_imd::commands::Command;

use super::registry::{EvalCtx, Experiment};
use super::Effort;

/// Per-separation measurements.
#[derive(Debug, Clone, Copy)]
pub struct WardRow {
    /// Bed separation, meters.
    pub separation_m: f64,
    /// Staggered access: patient A's shield PER.
    pub per_a_staggered: f64,
    /// Staggered access: patient B's shield PER.
    pub per_b_staggered: f64,
    /// Collided access: worst of the two shields' PER.
    pub per_collided: f64,
    /// Collided access: cross-shield active-jam engagements (each shield
    /// treating the other as an adversary).
    pub cross_jam_events: u64,
    /// Pooled eavesdropper BER over the staggered exchanges.
    pub ber_staggered: f64,
}

/// Packet-loss rate from (replies sent, replies decoded); a relay that
/// never elicited a reply counts as total loss.
fn per(sent: u64, ok: u64) -> f64 {
    if sent == 0 {
        1.0
    } else {
        (1.0 - ok as f64 / sent as f64).max(0.0)
    }
}

/// One bed separation, both access patterns; the eavesdropper stands
/// between the beds, 1.5 m off the bed axis.
pub fn one_separation(separation_m: f64, packets: usize, seed: u64) -> WardRow {
    let build = |seed: u64| {
        let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(seed));
        let pat = builder.add_patient((separation_m, 0.0), ImdModel::ConcertoCrt);
        let eve_ant = builder.add_at(Placement::los("eve", separation_m * 0.5, 1.5));
        (builder.build(), pat, eve_ant)
    };

    // --- Staggered arm: the shields take turns, one exchange window
    //     apart; the eavesdropper listens across the whole session. ---
    let (mut scenario, pat, eve_ant) = build(seed);
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
    let blocks = scenario.medium.blocks_for_duration(0.060);
    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..packets {
        for turn in 0..2usize {
            if turn == 0 {
                scenario
                    .shield
                    .as_mut()
                    .unwrap()
                    .queue_command(Command::Interrogate);
            } else {
                scenario.patients[pat]
                    .shield
                    .queue_command(Command::Interrogate);
            }
            scenario.run_blocks(&mut [&mut eve], blocks);
            for record in scenario.imd.take_tx_log() {
                let ber = eve.ber_against(record.start_tick, &record.bits);
                errors += (ber * record.bits.len() as f64).round() as usize;
                total += record.bits.len();
            }
            for record in scenario.patients[pat].imd.take_tx_log() {
                let ber = eve.ber_against(record.start_tick, &record.bits);
                errors += (ber * record.bits.len() as f64).round() as usize;
                total += record.bits.len();
            }
            eve.clear();
        }
    }
    let per_a_staggered = per(
        scenario.imd.stats.responses_sent,
        scenario.shield.as_ref().unwrap().stats.imd_frames_ok,
    );
    let per_b_staggered = per(
        scenario.patients[pat].imd.stats.responses_sent,
        scenario.patients[pat].shield.stats.imd_frames_ok,
    );
    let ber_staggered = if total == 0 {
        0.5
    } else {
        errors as f64 / total as f64
    };

    // --- Collided arm: both shields interrogate simultaneously. ---
    let (mut scenario, pat, _) = build(seed ^ 0xA11D);
    let blocks = scenario.medium.blocks_for_duration(0.120);
    for _ in 0..packets {
        scenario
            .shield
            .as_mut()
            .unwrap()
            .queue_command(Command::Interrogate);
        scenario.patients[pat]
            .shield
            .queue_command(Command::Interrogate);
        scenario.run_blocks(&mut [], blocks);
    }
    let per_collided = per(
        scenario.imd.stats.responses_sent,
        scenario.shield.as_ref().unwrap().stats.imd_frames_ok,
    )
    .max(per(
        scenario.patients[pat].imd.stats.responses_sent,
        scenario.patients[pat].shield.stats.imd_frames_ok,
    ));
    let cross_jam_events = scenario.shield.as_ref().unwrap().stats.active_jam_events
        + scenario.patients[pat].shield.stats.active_jam_events;

    WardRow {
        separation_m,
        per_a_staggered,
        per_b_staggered,
        per_collided,
        cross_jam_events,
        ber_staggered,
    }
}

/// Result of the ward sweep.
#[derive(Debug, Clone)]
pub struct WardResult {
    /// One row per bed separation.
    pub rows: Vec<WardRow>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the separation sweep (0.75 m — beds pushed together — to 6 m —
/// opposite walls). Separations fan out on the sweep runner with
/// pre-derived seeds, so results are thread-count-invariant.
pub fn run(effort: Effort, seed: u64) -> WardResult {
    let separations = [0.75, 1.5, 3.0, 6.0];
    let rows: Vec<WardRow> = crate::parallel::parallel_map(&separations, |i, &d| {
        one_separation(
            d,
            effort.packets_per_location,
            seed.wrapping_add(i as u64 * 211),
        )
    });

    let mut artifact = Artifact::new(
        "Extension: ward",
        "Two shielded patients on one channel: staggered vs collided access, by bed separation",
    );
    artifact.push_series(Series::new(
        "staggered: patient A shield PER vs separation (m)",
        rows.iter()
            .map(|r| (r.separation_m, r.per_a_staggered))
            .collect(),
    ));
    artifact.push_series(Series::new(
        "staggered: patient B shield PER vs separation (m)",
        rows.iter()
            .map(|r| (r.separation_m, r.per_b_staggered))
            .collect(),
    ));
    artifact.push_series(Series::new(
        "collided: worst shield PER vs separation (m)",
        rows.iter()
            .map(|r| (r.separation_m, r.per_collided))
            .collect(),
    ));
    artifact.push_series(Series::new(
        "staggered: eavesdropper BER vs separation (m)",
        rows.iter()
            .map(|r| (r.separation_m, r.ber_staggered))
            .collect(),
    ));
    let worst_staggered = rows
        .iter()
        .map(|r| r.per_a_staggered.max(r.per_b_staggered))
        .fold(0.0, f64::max);
    let cross_jams: u64 = rows.iter().map(|r| r.cross_jam_events).sum();
    artifact.note(format!(
        "collided access deadlocks: each shield's §7(d) concurrent-signal guard treats the \
         other's command as an overwrite attack ({cross_jams} cross-shield active jams), and \
         the mutual jamming then starves both relays at every in-ward separation"
    ));
    artifact.note(format!(
        "staggered access (one exchange window apart) is the viable ward protocol: worst \
         shield PER {worst_staggered:.3} across separations"
    ));
    let ber_min = rows
        .iter()
        .map(|r| r.ber_staggered)
        .fold(f64::MAX, f64::min);
    artifact.note(format!(
        "confidentiality holds in the ward: eavesdropper BER never drops below {ber_min:.3}"
    ));
    WardResult { rows, artifact }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct WardExperiment;

impl Experiment for WardExperiment {
    fn name(&self) -> &'static str {
        "ward-multi-imd"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — two shielded patients in one ward (cross-shield interference)"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_relays_collided_deadlocks() {
        let row = one_separation(1.5, 4, 29);
        assert!(
            row.per_a_staggered < 0.5,
            "staggered patient A PER {} at 1.5 m",
            row.per_a_staggered
        );
        assert!(
            row.per_b_staggered < 0.5,
            "staggered patient B PER {} at 1.5 m",
            row.per_b_staggered
        );
        assert!(
            row.per_collided > 0.5,
            "collided access should starve the relays (PER {})",
            row.per_collided
        );
        assert!(
            row.cross_jam_events > 0,
            "the shields should have treated each other as adversaries"
        );
        assert!(
            (row.ber_staggered - 0.5).abs() < 0.12,
            "ward eavesdropper BER {} must stay ~0.5",
            row.ber_staggered
        );
    }

    #[test]
    fn sweep_reports_every_separation() {
        let r = run(
            Effort {
                packets_per_location: 2,
                ..Effort::tiny()
            },
            31,
        );
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.per_a_staggered));
            assert!((0.0..=1.0).contains(&row.per_b_staggered));
            assert!((0.0..=1.0).contains(&row.per_collided));
            assert!(
                (row.ber_staggered - 0.5).abs() < 0.15,
                "BER {} at {} m",
                row.ber_staggered,
                row.separation_m
            );
        }
    }
}
