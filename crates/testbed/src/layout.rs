//! The Fig. 6 testbed layout.
//!
//! The paper's evaluation places the IMD (implanted in bacon/ground beef)
//! and the shield at fixed positions in an office, and moves the adversary
//! among 18 numbered locations "between 20 cm and 30 m", mixing
//! line-of-sight and non-line-of-sight spots, *numbered in descending
//! order of received signal strength at the shield*.
//!
//! The original floor plan is not published, so this module reconstructs a
//! layout with the properties the paper reports (see DESIGN.md →
//! "Calibrated physical constants"):
//!
//! * location 1 is 20 cm away (closest eavesdropping/attack test);
//! * location 8 is ~14 m — the farthest spot where the FCC-power attacker
//!   still succeeds without the shield (Fig. 11/12), with locations 6–8
//!   marginal (success 0.94/0.77/0.59);
//! * location 13 is ~27 m — the farthest success for the 100×-power
//!   attacker without the shield (Fig. 13);
//! * locations above 13 are distant non-line-of-sight spots where even
//!   the 100× attacker fails;
//! * ordering by loss under the calibrated pathloss model is monotone, so
//!   "descending RSS" numbering holds by construction.

use hb_channel::geometry::Placement;
use hb_channel::pathloss::PathlossModel;

/// One adversary location in the testbed.
#[derive(Debug, Clone, Copy)]
pub struct Location {
    /// Paper-style location number (1-based).
    pub index: usize,
    /// Distance from the IMD/shield cluster, meters.
    pub distance_m: f64,
    /// Whether the spot has line of sight to the cluster.
    pub line_of_sight: bool,
}

impl Location {
    /// The placement for this location (positions along +x; only the
    /// distance and LOS flag matter to the channel model).
    pub fn placement(&self, label: &str) -> Placement {
        if self.line_of_sight {
            Placement::los(label, self.distance_m, 0.0)
        } else {
            Placement::nlos(label, self.distance_m, 0.0)
        }
    }
}

/// The full testbed geometry.
#[derive(Debug, Clone)]
pub struct Fig6Layout {
    /// The 18 adversary locations, ordered by descending RSS at the shield.
    pub locations: Vec<Location>,
    /// Shield distance from the IMD, meters (worn as a necklace/brooch —
    /// well under half a wavelength, the §3.2 requirement that defeats
    /// MIMO/directional-antenna adversaries).
    pub shield_offset_m: f64,
}

impl Default for Fig6Layout {
    fn default() -> Self {
        Self::paper()
    }
}

impl Fig6Layout {
    /// The reconstructed Fig. 6 layout.
    pub fn paper() -> Self {
        let spec: [(f64, bool); 18] = [
            (0.20, true),  // 1  — the 20 cm eavesdropper/attacker
            (1.50, true),  // 2
            (2.50, true),  // 3
            (4.00, true),  // 4  — last 100x success with shield (Fig. 13)
            (6.00, true),  // 5
            (3.50, false), // 6  — near NLOS (Fig. 11: 0.94)
            (13.0, true),  // 7
            (14.0, true),  // 8  — FCC-power limit without shield
            (9.00, false), // 9  — first clear failure for FCC power
            (24.0, true),  // 10
            (11.0, false), // 11
            (12.0, false), // 12
            (27.0, true),  // 13 — 100x limit without shield
            (22.0, false), // 14
            (25.0, false), // 15
            (28.0, false), // 16
            (30.0, false), // 17
            (30.5, false), // 18
        ];
        Fig6Layout {
            locations: spec
                .iter()
                .enumerate()
                .map(|(i, &(d, los))| Location {
                    index: i + 1,
                    distance_m: d,
                    line_of_sight: los,
                })
                .collect(),
            shield_offset_m: 0.25,
        }
    }

    /// Location by paper number (1-based).
    pub fn location(&self, index: usize) -> &Location {
        &self.locations[index - 1]
    }

    /// Median link loss from a location to the cluster under `model`
    /// (air + NLOS; no body term — that belongs to the IMD's own link).
    pub fn loss_db(&self, model: &PathlossModel, index: usize) -> f64 {
        let loc = self.location(index);
        let a = loc.placement("x");
        let cluster = Placement::los("cluster", 0.0, 0.0);
        model.link_loss_db(&a, &cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_locations_paper_distances() {
        let l = Fig6Layout::paper();
        assert_eq!(l.locations.len(), 18);
        assert!((l.location(1).distance_m - 0.2).abs() < 1e-9);
        assert!((l.location(8).distance_m - 14.0).abs() < 1e-9);
        assert!((l.location(13).distance_m - 27.0).abs() < 1e-9);
        // Spanning "between 20 cm and 30 m".
        let max = l
            .locations
            .iter()
            .map(|x| x.distance_m)
            .fold(0.0f64, f64::max);
        assert!((30.0..31.0).contains(&max));
    }

    #[test]
    fn ordering_is_descending_rss() {
        // Location numbering must be ascending in link loss (descending in
        // received signal strength), as the paper's figure states.
        let l = Fig6Layout::paper();
        let model = PathlossModel::mics_indoor();
        let mut last = f64::NEG_INFINITY;
        for i in 1..=18 {
            let loss = l.loss_db(&model, i);
            assert!(
                loss >= last - 1e-9,
                "location {i} loss {loss} breaks descending-RSS order (prev {last})"
            );
            last = loss;
        }
    }

    #[test]
    fn mix_of_los_and_nlos() {
        let l = Fig6Layout::paper();
        let los = l.locations.iter().filter(|x| x.line_of_sight).count();
        assert!((6..=12).contains(&los), "{los} LOS locations");
    }

    #[test]
    fn shield_is_wearably_close() {
        let l = Fig6Layout::paper();
        // Far less than half a wavelength (37.5 cm): the anti-MIMO
        // requirement of §3.2.
        assert!(l.shield_offset_m < 0.375 / 2.0 + 0.1);
        assert!(l.shield_offset_m > 0.0);
    }

    #[test]
    fn placements_carry_los_flag() {
        let l = Fig6Layout::paper();
        assert!(l.location(1).placement("a").line_of_sight);
        assert!(!l.location(9).placement("a").line_of_sight);
    }
}
