//! # hb-testbed — the evaluation harness
//!
//! Reconstructs the paper's testbed (Fig. 6) in simulation and reproduces
//! every table and figure of the evaluation (§10–§11):
//!
//! * [`layout`] — the 18 adversary locations, shield and IMD placements.
//! * [`scenario`] — scenario assembly with the calibrated channel model.
//! * [`experiments`] — one module per table/figure, plus ablations and
//!   extension scenarios, all behind the
//!   [`experiments::registry::Experiment`] trait and its static registry.
//! * [`recovery`] — the adversity-hardened exchange driver: link-layer
//!   ARQ (timeout/backoff/bounded retries) plus live MICS session
//!   recovery onto a clean channel under persistent interference.
//! * [`defense`] — the defense matrix: alternative IMD-security
//!   protocols (the paper's shield, IMDfence-style in-device sessions,
//!   zero-power wake-up gating) behind one [`defense::Defense`] trait so
//!   the full adversary suite runs against each.
//! * [`montecarlo`] — the adaptive sampling engine: grows trial counts in
//!   deterministic rounds until Wilson/bootstrap confidence intervals hit
//!   a target half-width (the statistical experiments ride it).
//! * [`checkpoint`] — the crash-safe run layer: integrity-checked
//!   journals the engine checkpoints after every round (interrupted runs
//!   resume bit-identically), per-trial panic quarantine, deadlines, and
//!   the `HB_FAULT` fault-injection harness.
//! * [`report`] — paper-style rendering plus CSV and JSON export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crosstraffic;
pub mod defense;
pub mod experiments;
pub mod layout;
pub mod montecarlo;
pub mod parallel;
pub mod recovery;
pub mod report;
pub mod scenario;

pub use checkpoint::{RunCtl, RunHealth};
pub use defense::{run_defended_exchange, Defense, DefenseClaims, DefenseRig, DefenseStats};
pub use experiments::registry::{EvalCtx, Experiment};
pub use experiments::Effort;
pub use layout::Fig6Layout;
pub use montecarlo::{Estimate, McConfig};
pub use parallel::threads as parallel_threads;
pub use recovery::{run_arq_exchange, ExchangeError, ExchangeOutcome};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioConfig};
