//! Adaptive Monte-Carlo engine: confidence-interval-driven sampling on
//! top of [`crate::parallel`].
//!
//! The paper's headline numbers are statistical — eavesdropper BER ≈ 0.5
//! under shield jamming (Figs. 8–9), attack success ≈ 0 with the shield
//! present (Figs. 11–12) — but for five PRs the tests asserted on
//! small-sample *point estimates*, the ROADMAP's "known-flaky area" that
//! every RNG change threatened to trip. This module is the permanent fix:
//! experiments run trials in sharded batches, pool the counts, compute a
//! [Wilson score interval](hb_dsp::stats::wilson_interval) (proportions)
//! or a [bootstrap interval](hb_dsp::stats::bootstrap_mean_interval)
//! (continuous metrics), and *grow the sample count in deterministic
//! rounds* until the interval is tight enough — so assertions become "the
//! CI excludes the forbidden region" instead of "the point estimate lands
//! inside a bound".
//!
//! # Determinism
//!
//! Every trial's seed is derived from `(master seed, global trial index)`
//! by a SplitMix64 mix **before** the fan-out, and per-round results are
//! reduced in trial order. Consequently:
//!
//! * results are bit-identical at any `HB_THREADS` worker count, and
//! * any stopping point is bit-identical across runs: a run capped at
//!   `n` trials produces exactly the estimates a longer run had after its
//!   first `n` trials (early-stop boundaries are prefix-stable; the
//!   `stopping_is_prefix_stable` test pins this).
//!
//! Stopping decisions are themselves computed from pooled (deterministic)
//! counts, so adaptivity never breaks reproducibility.
//!
//! # Crash safety
//!
//! When a driver installs a [`checkpoint::RunCtl`] (e.g. `hb_eval
//! --checkpoint-dir`), every adaptive call journals its pooled state
//! after each round and — on `--resume` — restarts from the journal.
//! Because stopping points are prefix-stable, a resumed run follows the
//! exact round schedule of an uninterrupted one and produces the
//! bit-identical [`Estimate`]. Independently of journaling, every trial
//! runs under `catch_unwind`: a panicking trial is quarantined (it
//! contributes no counts but still consumes its index, so the seed
//! stream of the surviving trials is unperturbed) and the run completes
//! degraded instead of tearing down the evaluation. A healthy run with
//! no `RunCtl` takes none of these paths and its output is unchanged.

use crate::checkpoint::{self, Journal, JournalCfg, JournalKind, Quarantine, RunCtl};
use crate::parallel;
use hb_dsp::stats::{bootstrap_mean_interval, wilson_interval, Z_95};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A point estimate with its confidence interval: the unit every adaptive
/// experiment reports per data point (and the `Artifact` CI series carry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (pooled proportion or sample mean).
    pub mean: f64,
    /// Lower confidence bound.
    pub ci_lo: f64,
    /// Upper confidence bound.
    pub ci_hi: f64,
    /// Pooled denominator behind the estimate: total Bernoulli trials
    /// (bits, frames, attempts) for proportions; samples for means.
    pub n: u64,
}

impl Estimate {
    /// Half the interval width — the quantity the adaptive loop drives
    /// below [`McConfig`]'s target.
    pub fn half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }

    /// True if the whole interval lies inside `(lo, hi)` — the CI-based
    /// form of "the estimate meets the paper bound": not only does the
    /// point estimate land inside, the data rule out everything outside.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        self.ci_lo > lo && self.ci_hi < hi
    }

    /// True if the whole interval lies strictly below `bound`.
    pub fn below(&self, bound: f64) -> bool {
        self.ci_hi < bound
    }
}

/// Sizing of an adaptive run: how it starts, grows, and stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Trial tasks in the first round (also the minimum sample).
    pub initial_trials: usize,
    /// Hard cap on total trial tasks across all rounds.
    pub max_trials: usize,
    /// Stop once every tracked estimate's CI half-width is at or below
    /// this target.
    pub target_half_width: f64,
    /// z-score of the interval (default [`Z_95`]).
    pub z: f64,
    /// Resamples per bootstrap interval (continuous metrics only).
    pub bootstrap_resamples: usize,
}

impl McConfig {
    /// A config sized from an [`Effort`](crate::experiments::Effort)
    /// preset: its CI-target knob and trial cap, with the engine's
    /// defaults for everything else. The first round runs an eighth of
    /// the cap (at least 2 trials), so a converging run finishes in a
    /// handful of rounds and a non-converging one still hits the cap in
    /// ~4 doublings.
    pub fn from_effort(effort: &crate::experiments::Effort) -> Self {
        McConfig {
            initial_trials: (effort.mc_max_trials / 8).clamp(2, 64),
            max_trials: effort.mc_max_trials.max(1),
            target_half_width: effort.ci_half_width,
            z: Z_95,
            bootstrap_resamples: 200,
        }
    }

    /// Same sizing with a different trial cap (experiments whose trials
    /// are whole attack attempts cap at the effort's attempt count).
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = max_trials.max(1);
        self.initial_trials = self.initial_trials.min(self.max_trials);
        self
    }
}

/// One adaptive run's outcome: the final estimates plus the per-round
/// trace (cumulative estimates after each round — what the prefix-
/// stability tests compare).
#[derive(Debug, Clone)]
pub struct McRun<const K: usize> {
    /// Final pooled estimates, one per tracked proportion.
    pub estimates: [Estimate; K],
    /// Trial tasks executed (including quarantined ones).
    pub trials: u64,
    /// Cumulative estimates after each completed round.
    pub trace: Vec<[Estimate; K]>,
    /// Trials whose panic was caught and isolated; empty on a healthy
    /// run. Each record carries the trial's index, seed, and panic
    /// message for exact replay.
    pub quarantines: Vec<Quarantine>,
    /// True if an installed deadline stopped the run before convergence
    /// or the trial cap.
    pub truncated: bool,
}

/// Derives the seed of global trial `index` from the master seed —
/// SplitMix64, the same mix `StdRng::seed_from_u64` uses internally, so
/// neighbouring indices produce statistically independent streams. Seeds
/// depend only on `(master, index)`, never on round boundaries or thread
/// count: that is the whole determinism story.
pub fn trial_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `trial` adaptively until all `K` pooled Wilson intervals reach
/// the target half-width or the trial cap is hit.
///
/// `trial` receives a pre-derived seed and returns `K` count pairs
/// `(successes, trials)` — e.g. `[(bit_errors, bits), (lost, frames)]`.
/// Trials fan out on [`parallel::parallel_map_n`]; counts pool by
/// saturating summation in trial order.
pub fn adaptive_proportions<F, const K: usize>(cfg: &McConfig, seed: u64, trial: F) -> McRun<K>
where
    F: Fn(u64) -> [(u64, u64); K] + Sync,
{
    adaptive_proportions_with(parallel::threads(), cfg, seed, trial)
}

/// [`adaptive_proportions`] with an explicit worker count — the
/// determinism tests use this to compare 1-thread and N-thread runs
/// without touching the process environment.
pub fn adaptive_proportions_with<F, const K: usize>(
    workers: usize,
    cfg: &McConfig,
    seed: u64,
    trial: F,
) -> McRun<K>
where
    F: Fn(u64) -> [(u64, u64); K] + Sync,
{
    let ctl = checkpoint::current();
    adaptive_proportions_ctl(workers, cfg, seed, ctl.as_deref(), trial)
}

/// [`adaptive_proportions_with`] against an explicit [`RunCtl`] instead
/// of the process-installed one — what the crash-safety tests use to
/// exercise journaling, resume, quarantine, and deadlines without
/// touching global state. `ctl: None` disables all of them.
pub fn adaptive_proportions_ctl<F, const K: usize>(
    workers: usize,
    cfg: &McConfig,
    seed: u64,
    ctl: Option<&RunCtl>,
    trial: F,
) -> McRun<K>
where
    F: Fn(u64) -> [(u64, u64); K] + Sync,
{
    let mut pooled = [(0u64, 0u64); K];
    let mut done = 0usize;
    let mut trace = Vec::new();
    let mut quarantines: Vec<Quarantine> = Vec::new();
    let mut truncated = false;
    let mut estimates = [Estimate {
        mean: 0.0,
        ci_lo: 0.0,
        ci_hi: 1.0,
        n: 0,
    }; K];

    let journal_path = ctl.and_then(|c| c.claim_journal(seed, K, "p"));
    if let (Some(c), Some(path)) = (ctl, journal_path.as_ref()) {
        if c.resuming() {
            if let Some(j) = Journal::load(path) {
                if let JournalKind::Proportions(pools) = &j.kind {
                    if j.matches(seed, &journal_cfg(cfg)) && pools.len() == K {
                        for (dst, &src) in pooled.iter_mut().zip(pools.iter()) {
                            *dst = src;
                        }
                        done = j.done as usize;
                        quarantines = j.quarantines;
                    }
                }
            }
        }
    }
    if done > 0 {
        refresh_estimates(&mut estimates, &pooled, cfg);
    }

    // Loop-top checks reproduce the original post-round breaks exactly:
    // a fresh run enters with `done == 0` and behaves as before; a
    // resumed run re-evaluates the crashed run's last stopping decision
    // from the restored counts, so it continues (or stops) precisely
    // where an uninterrupted run would have.
    loop {
        if done > 0 && converged(&estimates, cfg) {
            break;
        }
        if done >= cfg.max_trials {
            break;
        }
        if ctl.is_some_and(|c| c.deadline_expired()) {
            truncated = true;
            break;
        }
        let batch = next_batch(cfg, done);
        let indices: Vec<u64> = (done as u64..(done + batch) as u64).collect();
        let results = parallel::parallel_map_with(workers, &indices, |_, &i| {
            let s = trial_seed(seed, i);
            guarded_trial(i, s, || trial(s))
        });
        for result in results {
            match result {
                Ok(counts) => {
                    for (pool, &(s, t)) in pooled.iter_mut().zip(counts.iter()) {
                        debug_assert!(s <= t, "trial reported more successes than trials");
                        pool.0 = pool.0.saturating_add(s);
                        pool.1 = pool.1.saturating_add(t);
                    }
                }
                Err(q) => quarantines.push(q),
            }
        }
        done += batch;
        refresh_estimates(&mut estimates, &pooled, cfg);
        trace.push(estimates);
        if let Some(path) = journal_path.as_ref() {
            store_journal(
                ctl,
                path,
                &Journal {
                    master: seed,
                    cfg: journal_cfg(cfg),
                    done: done as u64,
                    kind: JournalKind::Proportions(pooled.to_vec()),
                    quarantines: quarantines.clone(),
                },
            );
        }
    }
    if let Some(c) = ctl {
        if truncated {
            c.note_truncated();
        }
        c.note_quarantined(quarantines.len() as u64);
    }
    McRun {
        estimates,
        trials: done as u64,
        trace,
        quarantines,
        truncated,
    }
}

/// Single-proportion convenience over [`adaptive_proportions`].
pub fn adaptive_proportion<F>(cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> (u64, u64) + Sync,
{
    adaptive_proportions::<_, 1>(cfg, seed, |s| [trial(s)]).estimates[0]
}

/// [`adaptive_proportion`] with an explicit worker count — experiment
/// sweeps that already fan out across data points run their inner
/// adaptive loops with one worker to avoid nested thread pools.
pub fn adaptive_proportion_with<F>(workers: usize, cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> (u64, u64) + Sync,
{
    adaptive_proportions_with::<_, 1>(workers, cfg, seed, |s| [trial(s)]).estimates[0]
}

/// Runs `trial` adaptively until the bootstrap interval of the sample
/// mean reaches the target half-width or the trial cap is hit — the
/// continuous-metric sibling of [`adaptive_proportions`], for SINR and
/// turnaround-style measurements.
///
/// The bootstrap reseeds from `(seed, round)` each round, so any stopping
/// point remains a pure function of `(cfg, seed)` — still bit-identical
/// at any thread count, because the samples it resamples arrive in trial
/// order.
pub fn adaptive_mean<F>(cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> f64 + Sync,
{
    adaptive_mean_with(parallel::threads(), cfg, seed, trial)
}

/// [`adaptive_mean`] with an explicit worker count (determinism tests).
pub fn adaptive_mean_with<F>(workers: usize, cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> f64 + Sync,
{
    let ctl = checkpoint::current();
    adaptive_mean_ctl(workers, cfg, seed, ctl.as_deref(), trial)
}

/// [`adaptive_mean_with`] against an explicit [`RunCtl`] — the
/// continuous-metric sibling of [`adaptive_proportions_ctl`]. The journal
/// stores every completed sample bit-exactly (f64 bit patterns), so a
/// resumed run reproduces the same bootstrap intervals and stopping
/// point. Quarantine and truncation are reported through the `RunCtl`.
pub fn adaptive_mean_ctl<F>(
    workers: usize,
    cfg: &McConfig,
    seed: u64,
    ctl: Option<&RunCtl>,
    trial: F,
) -> Estimate
where
    F: Fn(u64) -> f64 + Sync,
{
    let mut samples: Vec<f64> = Vec::new();
    // Trial tasks completed: equals `samples.len()` on a healthy run, but
    // quarantined trials consume their index without yielding a sample.
    let mut done = 0usize;
    let mut quarantines: Vec<Quarantine> = Vec::new();
    let mut truncated = false;
    let alpha = 2.0 * (1.0 - normal_cdf(cfg.z));
    let interval = |samples: &[f64]| {
        bootstrap_mean_interval(
            samples,
            cfg.bootstrap_resamples,
            alpha,
            trial_seed(seed ^ 0xB007_57AB, samples.len() as u64),
        )
    };

    let journal_path = ctl.and_then(|c| c.claim_journal(seed, 1, "m"));
    if let (Some(c), Some(path)) = (ctl, journal_path.as_ref()) {
        if c.resuming() {
            if let Some(j) = Journal::load(path) {
                if let JournalKind::Mean(restored) = &j.kind {
                    if j.matches(seed, &journal_cfg(cfg)) {
                        samples = restored.clone();
                        done = j.done as usize;
                        quarantines = j.quarantines;
                    }
                }
            }
        }
    }
    // A resumed run first re-evaluates the crashed run's last stopping
    // decision (same interval, same bootstrap seed), then continues on
    // the original schedule.
    let mut converged = done > 0 && samples.len() >= 2 && {
        let (lo, hi) = interval(&samples);
        (hi - lo) / 2.0 <= cfg.target_half_width
    };
    while !converged && done < cfg.max_trials {
        if ctl.is_some_and(|c| c.deadline_expired()) {
            truncated = true;
            break;
        }
        let batch = next_batch(cfg, done);
        let indices: Vec<u64> = (done as u64..(done + batch) as u64).collect();
        let results = parallel::parallel_map_with(workers, &indices, |_, &i| {
            let s = trial_seed(seed, i);
            guarded_trial(i, s, || trial(s))
        });
        for result in results {
            match result {
                Ok(x) => samples.push(x),
                Err(q) => quarantines.push(q),
            }
        }
        done += batch;
        let (lo, hi) = interval(&samples);
        converged = samples.len() >= 2 && (hi - lo) / 2.0 <= cfg.target_half_width;
        if let Some(path) = journal_path.as_ref() {
            store_journal(
                ctl,
                path,
                &Journal {
                    master: seed,
                    cfg: journal_cfg(cfg),
                    done: done as u64,
                    kind: JournalKind::Mean(samples.clone()),
                    quarantines: quarantines.clone(),
                },
            );
        }
    }
    if let Some(c) = ctl {
        if truncated {
            c.note_truncated();
        }
        c.note_quarantined(quarantines.len() as u64);
    }
    let (lo, hi) = interval(&samples);
    Estimate {
        mean: samples.iter().sum::<f64>() / samples.len().max(1) as f64,
        ci_lo: lo,
        ci_hi: hi,
        n: samples.len() as u64,
    }
}

/// The next round's size: the first round is `initial_trials`, then each
/// round doubles the total so far, always clamped to the cap. Round
/// boundaries are a pure function of `(cfg, trials done)` — no state, so
/// a run resumed from a journaled `done` count replays the exact schedule
/// an uninterrupted run would have followed.
fn next_batch(cfg: &McConfig, done: usize) -> usize {
    let want = if done == 0 { cfg.initial_trials } else { done };
    want.max(1).min(cfg.max_trials - done)
}

/// Recomputes the pooled Wilson estimates (shared by the round loop and
/// the resume path, so both produce bit-identical values from the same
/// counts).
fn refresh_estimates<const K: usize>(
    estimates: &mut [Estimate; K],
    pooled: &[(u64, u64); K],
    cfg: &McConfig,
) {
    for (est, &(s, t)) in estimates.iter_mut().zip(pooled.iter()) {
        let (lo, hi) = wilson_interval(s.min(t), t, cfg.z);
        *est = Estimate {
            mean: if t > 0 { s as f64 / t as f64 } else { 0.5 },
            ci_lo: lo,
            ci_hi: hi,
            n: t,
        };
    }
}

/// The stopping predicate: every tracked interval has data and meets the
/// half-width target.
fn converged(estimates: &[Estimate], cfg: &McConfig) -> bool {
    estimates
        .iter()
        .all(|e| e.n > 0 && e.half_width() <= cfg.target_half_width)
}

/// The sizing fingerprint a journal stores so a resume under a different
/// config is rejected instead of mis-scheduled.
fn journal_cfg(cfg: &McConfig) -> JournalCfg {
    JournalCfg {
        initial_trials: cfg.initial_trials,
        max_trials: cfg.max_trials,
        target_half_width: cfg.target_half_width,
        z: cfg.z,
        bootstrap_resamples: cfg.bootstrap_resamples,
    }
}

/// Runs one trial under `catch_unwind`: the injected-fault hook fires
/// inside the guard, and a panic — organic or injected — becomes a
/// [`Quarantine`] record instead of unwinding into the sweep runner.
/// `AssertUnwindSafe` is sound here because a quarantined trial's partial
/// state is dropped wholesale; nothing it touched is observed again.
fn guarded_trial<T>(index: u64, seed: u64, run: impl FnOnce() -> T) -> Result<T, Quarantine> {
    match catch_unwind(AssertUnwindSafe(|| {
        checkpoint::inject_trial_panic(index);
        run()
    })) {
        Ok(v) => Ok(v),
        Err(payload) => Err(Quarantine {
            index,
            seed,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Checkpoints one round's journal. A write failure warns once per run
/// and the run continues without checkpoints — losing resumability must
/// not fail an otherwise healthy evaluation. Successful writes feed the
/// `crash_after_round` fault counter.
fn store_journal(ctl: Option<&RunCtl>, path: &std::path::Path, journal: &Journal) {
    match journal.store(path) {
        Ok(()) => checkpoint::note_round_checkpointed(),
        Err(e) => {
            if let Some(c) = ctl {
                c.warn_io_once(&format!(
                    "warning: cannot write checkpoint journal {}: {e}; \
                     continuing without checkpoints",
                    path.display()
                ));
            }
        }
    }
}

/// Φ(z), the standard normal CDF (via `erf`-free Abramowitz–Stegun 7.1.26
/// rational approximation, |error| < 7.5e-8 — far tighter than any CI use
/// here needs). Maps the config's z-score to the bootstrap's alpha.
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(initial: usize, max: usize, target: f64) -> McConfig {
        McConfig {
            initial_trials: initial,
            max_trials: max,
            target_half_width: target,
            z: Z_95,
            bootstrap_resamples: 100,
        }
    }

    /// A deterministic pseudo-Bernoulli trial: 16 "bits" per trial, each
    /// an xor-fold of the seed — behaves like p = 0.5 data.
    fn coin_trial(seed: u64) -> (u64, u64) {
        let mut s = 0;
        for b in 0..16u64 {
            let x = trial_seed(seed, b);
            s += (x.count_ones() as u64) & 1;
        }
        (s, 16)
    }

    #[test]
    fn converges_and_tightens() {
        let c = cfg(4, 4096, 0.02);
        let run = adaptive_proportions_with(1, &c, 42, |s| [coin_trial(s)]);
        let est = run.estimates[0];
        assert!(est.half_width() <= 0.02, "half-width {}", est.half_width());
        assert!(est.within(0.40, 0.60), "p=0.5 coin: {est:?}");
        assert!(run.trials <= 4096);
        // Widths shrink monotonically along the trace.
        for w in run.trace.windows(2) {
            assert!(w[1][0].half_width() <= w[0][0].half_width() + 1e-12);
        }
    }

    #[test]
    fn respects_the_trial_cap() {
        let c = cfg(3, 10, 1e-9); // unreachable target: must stop at cap
        let run = adaptive_proportions_with(1, &c, 1, |s| [coin_trial(s)]);
        assert_eq!(run.trials, 10);
        assert_eq!(run.estimates[0].n, 160);
    }

    #[test]
    fn thread_count_invariant() {
        let c = cfg(5, 640, 0.015);
        let a = adaptive_proportions_with(1, &c, 7, |s| [coin_trial(s)]);
        let b = adaptive_proportions_with(4, &c, 7, |s| [coin_trial(s)]);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.estimates[0], b.estimates[0]);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(b.trace.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn stopping_is_prefix_stable() {
        // A run capped at n trials must reproduce exactly the estimates a
        // longer run had after its first n trials: seeds derive from the
        // global trial index, so early-stop boundaries change nothing.
        let long = adaptive_proportions_with(2, &cfg(4, 1024, 1e-9), 99, |s| [coin_trial(s)]);
        for (r, round) in long.trace.iter().enumerate() {
            let capped_max = 4usize << r; // totals double per round: 4, 8, 16...
            let short =
                adaptive_proportions_with(3, &cfg(4, capped_max, 1e-9), 99, |s| [coin_trial(s)]);
            assert_eq!(
                short.estimates[0], round[0],
                "round {r}: capped run must equal the longer run's prefix"
            );
        }
    }

    #[test]
    fn multi_component_waits_for_all() {
        // Component 0 converges almost immediately (huge denominator);
        // component 1 has 1 trial per task and forces further rounds.
        let c = cfg(4, 4096, 0.05);
        let run = adaptive_proportions_with(1, &c, 5, |s| {
            let (hits, n) = coin_trial(s);
            [(hits * 64, n * 64), (hits & 1, 1)]
        });
        assert!(run.estimates[0].half_width() <= 0.05);
        assert!(run.estimates[1].half_width() <= 0.05);
        assert!(
            run.estimates[1].n >= 100,
            "the slow component must have driven sampling ({} trials)",
            run.estimates[1].n
        );
    }

    #[test]
    fn adaptive_mean_converges_deterministically() {
        let c = cfg(8, 4096, 0.05);
        let noisy = |s: u64| (trial_seed(s, 0) >> 11) as f64 / (1u64 << 53) as f64; // U[0,1)
        let a = adaptive_mean_with(1, &c, 3, noisy);
        let b = adaptive_mean_with(4, &c, 3, noisy);
        assert_eq!(a, b, "bootstrap CI must be thread-count invariant");
        assert!(a.half_width() <= 0.05);
        assert!(a.ci_lo <= a.mean && a.mean <= a.ci_hi);
        assert!(a.within(0.3, 0.7), "U[0,1) mean ~0.5: {a:?}");
    }

    #[test]
    fn trial_seeds_decorrelate() {
        // Neighbouring indices and neighbouring masters both produce
        // well-separated seeds (SplitMix64 avalanche).
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        let c = trial_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!((a ^ b).count_ones() > 10);
        assert!((a ^ c).count_ones() > 10);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(Z_95) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-Z_95) - 0.025).abs() < 1e-6);
    }
}
