//! Adaptive Monte-Carlo engine: confidence-interval-driven sampling on
//! top of [`crate::parallel`].
//!
//! The paper's headline numbers are statistical — eavesdropper BER ≈ 0.5
//! under shield jamming (Figs. 8–9), attack success ≈ 0 with the shield
//! present (Figs. 11–12) — but for five PRs the tests asserted on
//! small-sample *point estimates*, the ROADMAP's "known-flaky area" that
//! every RNG change threatened to trip. This module is the permanent fix:
//! experiments run trials in sharded batches, pool the counts, compute a
//! [Wilson score interval](hb_dsp::stats::wilson_interval) (proportions)
//! or a [bootstrap interval](hb_dsp::stats::bootstrap_mean_interval)
//! (continuous metrics), and *grow the sample count in deterministic
//! rounds* until the interval is tight enough — so assertions become "the
//! CI excludes the forbidden region" instead of "the point estimate lands
//! inside a bound".
//!
//! # Determinism
//!
//! Every trial's seed is derived from `(master seed, global trial index)`
//! by a SplitMix64 mix **before** the fan-out, and per-round results are
//! reduced in trial order. Consequently:
//!
//! * results are bit-identical at any `HB_THREADS` worker count, and
//! * any stopping point is bit-identical across runs: a run capped at
//!   `n` trials produces exactly the estimates a longer run had after its
//!   first `n` trials (early-stop boundaries are prefix-stable; the
//!   `stopping_is_prefix_stable` test pins this).
//!
//! Stopping decisions are themselves computed from pooled (deterministic)
//! counts, so adaptivity never breaks reproducibility.

use crate::parallel;
use hb_dsp::stats::{bootstrap_mean_interval, wilson_interval, Z_95};

/// A point estimate with its confidence interval: the unit every adaptive
/// experiment reports per data point (and the `Artifact` CI series carry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (pooled proportion or sample mean).
    pub mean: f64,
    /// Lower confidence bound.
    pub ci_lo: f64,
    /// Upper confidence bound.
    pub ci_hi: f64,
    /// Pooled denominator behind the estimate: total Bernoulli trials
    /// (bits, frames, attempts) for proportions; samples for means.
    pub n: u64,
}

impl Estimate {
    /// Half the interval width — the quantity the adaptive loop drives
    /// below [`McConfig`]'s target.
    pub fn half_width(&self) -> f64 {
        (self.ci_hi - self.ci_lo) / 2.0
    }

    /// True if the whole interval lies inside `(lo, hi)` — the CI-based
    /// form of "the estimate meets the paper bound": not only does the
    /// point estimate land inside, the data rule out everything outside.
    pub fn within(&self, lo: f64, hi: f64) -> bool {
        self.ci_lo > lo && self.ci_hi < hi
    }

    /// True if the whole interval lies strictly below `bound`.
    pub fn below(&self, bound: f64) -> bool {
        self.ci_hi < bound
    }
}

/// Sizing of an adaptive run: how it starts, grows, and stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Trial tasks in the first round (also the minimum sample).
    pub initial_trials: usize,
    /// Hard cap on total trial tasks across all rounds.
    pub max_trials: usize,
    /// Stop once every tracked estimate's CI half-width is at or below
    /// this target.
    pub target_half_width: f64,
    /// z-score of the interval (default [`Z_95`]).
    pub z: f64,
    /// Resamples per bootstrap interval (continuous metrics only).
    pub bootstrap_resamples: usize,
}

impl McConfig {
    /// A config sized from an [`Effort`](crate::experiments::Effort)
    /// preset: its CI-target knob and trial cap, with the engine's
    /// defaults for everything else. The first round runs an eighth of
    /// the cap (at least 2 trials), so a converging run finishes in a
    /// handful of rounds and a non-converging one still hits the cap in
    /// ~4 doublings.
    pub fn from_effort(effort: &crate::experiments::Effort) -> Self {
        McConfig {
            initial_trials: (effort.mc_max_trials / 8).clamp(2, 64),
            max_trials: effort.mc_max_trials.max(1),
            target_half_width: effort.ci_half_width,
            z: Z_95,
            bootstrap_resamples: 200,
        }
    }

    /// Same sizing with a different trial cap (experiments whose trials
    /// are whole attack attempts cap at the effort's attempt count).
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = max_trials.max(1);
        self.initial_trials = self.initial_trials.min(self.max_trials);
        self
    }
}

/// One adaptive run's outcome: the final estimates plus the per-round
/// trace (cumulative estimates after each round — what the prefix-
/// stability tests compare).
#[derive(Debug, Clone)]
pub struct McRun<const K: usize> {
    /// Final pooled estimates, one per tracked proportion.
    pub estimates: [Estimate; K],
    /// Trial tasks executed.
    pub trials: u64,
    /// Cumulative estimates after each completed round.
    pub trace: Vec<[Estimate; K]>,
}

/// Derives the seed of global trial `index` from the master seed —
/// SplitMix64, the same mix `StdRng::seed_from_u64` uses internally, so
/// neighbouring indices produce statistically independent streams. Seeds
/// depend only on `(master, index)`, never on round boundaries or thread
/// count: that is the whole determinism story.
pub fn trial_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `trial` adaptively until all `K` pooled Wilson intervals reach
/// the target half-width or the trial cap is hit.
///
/// `trial` receives a pre-derived seed and returns `K` count pairs
/// `(successes, trials)` — e.g. `[(bit_errors, bits), (lost, frames)]`.
/// Trials fan out on [`parallel::parallel_map_n`]; counts pool by
/// saturating summation in trial order.
pub fn adaptive_proportions<F, const K: usize>(cfg: &McConfig, seed: u64, trial: F) -> McRun<K>
where
    F: Fn(u64) -> [(u64, u64); K] + Sync,
{
    adaptive_proportions_with(parallel::threads(), cfg, seed, trial)
}

/// [`adaptive_proportions`] with an explicit worker count — the
/// determinism tests use this to compare 1-thread and N-thread runs
/// without touching the process environment.
pub fn adaptive_proportions_with<F, const K: usize>(
    workers: usize,
    cfg: &McConfig,
    seed: u64,
    trial: F,
) -> McRun<K>
where
    F: Fn(u64) -> [(u64, u64); K] + Sync,
{
    let mut pooled = [(0u64, 0u64); K];
    let mut done = 0usize;
    let mut trace = Vec::new();
    let mut estimates = [Estimate {
        mean: 0.0,
        ci_lo: 0.0,
        ci_hi: 1.0,
        n: 0,
    }; K];
    while done < cfg.max_trials {
        let batch = next_batch(cfg, done);
        let indices: Vec<u64> = (done as u64..(done + batch) as u64).collect();
        let results =
            parallel::parallel_map_with(workers, &indices, |_, &i| trial(trial_seed(seed, i)));
        for counts in &results {
            for (pool, &(s, t)) in pooled.iter_mut().zip(counts.iter()) {
                debug_assert!(s <= t, "trial reported more successes than trials");
                pool.0 = pool.0.saturating_add(s);
                pool.1 = pool.1.saturating_add(t);
            }
        }
        done += batch;
        for (est, &(s, t)) in estimates.iter_mut().zip(pooled.iter()) {
            let (lo, hi) = wilson_interval(s.min(t), t, cfg.z);
            *est = Estimate {
                mean: if t > 0 { s as f64 / t as f64 } else { 0.5 },
                ci_lo: lo,
                ci_hi: hi,
                n: t,
            };
        }
        trace.push(estimates);
        let converged = estimates
            .iter()
            .all(|e| e.n > 0 && e.half_width() <= cfg.target_half_width);
        if converged {
            break;
        }
    }
    McRun {
        estimates,
        trials: done as u64,
        trace,
    }
}

/// Single-proportion convenience over [`adaptive_proportions`].
pub fn adaptive_proportion<F>(cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> (u64, u64) + Sync,
{
    adaptive_proportions::<_, 1>(cfg, seed, |s| [trial(s)]).estimates[0]
}

/// [`adaptive_proportion`] with an explicit worker count — experiment
/// sweeps that already fan out across data points run their inner
/// adaptive loops with one worker to avoid nested thread pools.
pub fn adaptive_proportion_with<F>(workers: usize, cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> (u64, u64) + Sync,
{
    adaptive_proportions_with::<_, 1>(workers, cfg, seed, |s| [trial(s)]).estimates[0]
}

/// Runs `trial` adaptively until the bootstrap interval of the sample
/// mean reaches the target half-width or the trial cap is hit — the
/// continuous-metric sibling of [`adaptive_proportions`], for SINR and
/// turnaround-style measurements.
///
/// The bootstrap reseeds from `(seed, round)` each round, so any stopping
/// point remains a pure function of `(cfg, seed)` — still bit-identical
/// at any thread count, because the samples it resamples arrive in trial
/// order.
pub fn adaptive_mean<F>(cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> f64 + Sync,
{
    adaptive_mean_with(parallel::threads(), cfg, seed, trial)
}

/// [`adaptive_mean`] with an explicit worker count (determinism tests).
pub fn adaptive_mean_with<F>(workers: usize, cfg: &McConfig, seed: u64, trial: F) -> Estimate
where
    F: Fn(u64) -> f64 + Sync,
{
    let mut samples: Vec<f64> = Vec::new();
    let alpha = 2.0 * (1.0 - normal_cdf(cfg.z));
    loop {
        let done = samples.len();
        if done >= cfg.max_trials {
            break;
        }
        let batch = next_batch(cfg, done);
        let indices: Vec<u64> = (done as u64..(done + batch) as u64).collect();
        samples.extend(parallel::parallel_map_with(workers, &indices, |_, &i| {
            trial(trial_seed(seed, i))
        }));
        let (lo, hi) = bootstrap_mean_interval(
            &samples,
            cfg.bootstrap_resamples,
            alpha,
            trial_seed(seed ^ 0xB007_57AB, samples.len() as u64),
        );
        if samples.len() >= 2 && (hi - lo) / 2.0 <= cfg.target_half_width {
            break;
        }
    }
    let (lo, hi) = bootstrap_mean_interval(
        &samples,
        cfg.bootstrap_resamples,
        alpha,
        trial_seed(seed ^ 0xB007_57AB, samples.len() as u64),
    );
    Estimate {
        mean: samples.iter().sum::<f64>() / samples.len().max(1) as f64,
        ci_lo: lo,
        ci_hi: hi,
        n: samples.len() as u64,
    }
}

/// The next round's size: the first round is `initial_trials`, then each
/// round doubles the total so far, always clamped to the cap. Round
/// boundaries are a pure function of `(cfg, trials done)` — no state.
fn next_batch(cfg: &McConfig, done: usize) -> usize {
    let want = if done == 0 { cfg.initial_trials } else { done };
    want.max(1).min(cfg.max_trials - done)
}

/// Φ(z), the standard normal CDF (via `erf`-free Abramowitz–Stegun 7.1.26
/// rational approximation, |error| < 7.5e-8 — far tighter than any CI use
/// here needs). Maps the config's z-score to the bootstrap's alpha.
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(initial: usize, max: usize, target: f64) -> McConfig {
        McConfig {
            initial_trials: initial,
            max_trials: max,
            target_half_width: target,
            z: Z_95,
            bootstrap_resamples: 100,
        }
    }

    /// A deterministic pseudo-Bernoulli trial: 16 "bits" per trial, each
    /// an xor-fold of the seed — behaves like p = 0.5 data.
    fn coin_trial(seed: u64) -> (u64, u64) {
        let mut s = 0;
        for b in 0..16u64 {
            let x = trial_seed(seed, b);
            s += (x.count_ones() as u64) & 1;
        }
        (s, 16)
    }

    #[test]
    fn converges_and_tightens() {
        let c = cfg(4, 4096, 0.02);
        let run = adaptive_proportions_with(1, &c, 42, |s| [coin_trial(s)]);
        let est = run.estimates[0];
        assert!(est.half_width() <= 0.02, "half-width {}", est.half_width());
        assert!(est.within(0.40, 0.60), "p=0.5 coin: {est:?}");
        assert!(run.trials <= 4096);
        // Widths shrink monotonically along the trace.
        for w in run.trace.windows(2) {
            assert!(w[1][0].half_width() <= w[0][0].half_width() + 1e-12);
        }
    }

    #[test]
    fn respects_the_trial_cap() {
        let c = cfg(3, 10, 1e-9); // unreachable target: must stop at cap
        let run = adaptive_proportions_with(1, &c, 1, |s| [coin_trial(s)]);
        assert_eq!(run.trials, 10);
        assert_eq!(run.estimates[0].n, 160);
    }

    #[test]
    fn thread_count_invariant() {
        let c = cfg(5, 640, 0.015);
        let a = adaptive_proportions_with(1, &c, 7, |s| [coin_trial(s)]);
        let b = adaptive_proportions_with(4, &c, 7, |s| [coin_trial(s)]);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.estimates[0], b.estimates[0]);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(b.trace.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn stopping_is_prefix_stable() {
        // A run capped at n trials must reproduce exactly the estimates a
        // longer run had after its first n trials: seeds derive from the
        // global trial index, so early-stop boundaries change nothing.
        let long = adaptive_proportions_with(2, &cfg(4, 1024, 1e-9), 99, |s| [coin_trial(s)]);
        for (r, round) in long.trace.iter().enumerate() {
            let capped_max = 4usize << r; // totals double per round: 4, 8, 16...
            let short =
                adaptive_proportions_with(3, &cfg(4, capped_max, 1e-9), 99, |s| [coin_trial(s)]);
            assert_eq!(
                short.estimates[0], round[0],
                "round {r}: capped run must equal the longer run's prefix"
            );
        }
    }

    #[test]
    fn multi_component_waits_for_all() {
        // Component 0 converges almost immediately (huge denominator);
        // component 1 has 1 trial per task and forces further rounds.
        let c = cfg(4, 4096, 0.05);
        let run = adaptive_proportions_with(1, &c, 5, |s| {
            let (hits, n) = coin_trial(s);
            [(hits * 64, n * 64), (hits & 1, 1)]
        });
        assert!(run.estimates[0].half_width() <= 0.05);
        assert!(run.estimates[1].half_width() <= 0.05);
        assert!(
            run.estimates[1].n >= 100,
            "the slow component must have driven sampling ({} trials)",
            run.estimates[1].n
        );
    }

    #[test]
    fn adaptive_mean_converges_deterministically() {
        let c = cfg(8, 4096, 0.05);
        let noisy = |s: u64| (trial_seed(s, 0) >> 11) as f64 / (1u64 << 53) as f64; // U[0,1)
        let a = adaptive_mean_with(1, &c, 3, noisy);
        let b = adaptive_mean_with(4, &c, 3, noisy);
        assert_eq!(a, b, "bootstrap CI must be thread-count invariant");
        assert!(a.half_width() <= 0.05);
        assert!(a.ci_lo <= a.mean && a.mean <= a.ci_hi);
        assert!(a.within(0.3, 0.7), "U[0,1) mean ~0.5: {a:?}");
    }

    #[test]
    fn trial_seeds_decorrelate() {
        // Neighbouring indices and neighbouring masters both produce
        // well-separated seeds (SplitMix64 avalanche).
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        let c = trial_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!((a ^ b).count_ones() > 10);
        assert!((a ^ c).count_ones() > 10);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(Z_95) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-Z_95) - 0.025).abs() < 1e-6);
    }
}
