//! Deterministic parallel sweep runner for the experiment harness.
//!
//! Every location sweep in the evaluation (Figs. 8–13, the ablations) is
//! embarrassingly parallel: each (location, repetition) task builds its
//! *own* scenario from a seed derived **before** the fan-out, runs it to
//! completion, and returns a summary value. Nothing is shared between
//! tasks, so results are bit-identical to the sequential order regardless
//! of the number of worker threads — determinism is carried by the
//! pre-derived seeds, not by scheduling.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `HB_THREADS` environment variable (`HB_THREADS=1`
//! recovers the strictly sequential execution; the golden tests assert
//! both give identical results).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once};

/// The number of worker threads sweeps use: `HB_THREADS` if set (minimum
/// 1), otherwise [`std::thread::available_parallelism`].
///
/// An unparseable `HB_THREADS` falls back to 1 worker and warns once on
/// stderr — a typo'd value must not silently serialize a sweep.
pub fn threads() -> usize {
    match std::env::var("HB_THREADS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "warning: HB_THREADS={v:?} is not a number; running with 1 worker thread"
                    );
                });
                1
            }
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` on [`threads`] workers, returning results in item
/// order. `f` receives `(index, &item)` and must derive all randomness
/// from its arguments (pass pre-derived seeds in `items`).
///
/// With one worker (or one item) this degenerates to a plain sequential
/// loop on the calling thread — no threads are spawned, so single-core
/// machines and `HB_THREADS=1` runs pay zero overhead.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_with(threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count — the golden tests use
/// this to assert 1-thread and N-thread runs are bit-identical without
/// touching the process environment.
pub fn parallel_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // A panicking task must surface *its own* panic to the caller, not a
    // `PoisonError` from a surviving slot: every task runs under
    // `catch_unwind`, payloads collect here, and after the join the
    // lowest-index payload is re-raised verbatim. Slot mutexes are locked
    // only for the (non-panicking) store, so they can never be poisoned.
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(out) => *slots[i].lock().unwrap() = Some(out),
                    Err(payload) => {
                        panics.lock().unwrap().push((i, payload));
                        break;
                    }
                }
            });
        }
    });
    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        // Deterministic choice among concurrent panics: the earliest item.
        panics.sort_by_key(|(i, _)| *i);
        std::panic::resume_unwind(panics.remove(0).1);
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Convenience for index sweeps: `parallel_map` over `0..n` without
/// materializing an item slice.
pub fn parallel_map_n<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    parallel_map(&idx, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_seeded_work() {
        // A stand-in for an experiment task: per-item RNG derived from the
        // item's seed, so results cannot depend on scheduling.
        let work = |seed: u64| -> u64 {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| rng.gen::<u64>() >> 40).sum()
        };
        let seeds: Vec<u64> = (0..32).map(|i| 0x9E3779B9u64.wrapping_mul(i)).collect();
        let sequential: Vec<u64> = seeds.iter().map(|&s| work(s)).collect();
        let parallel = parallel_map(&seeds, |_, &s| work(s));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_map_n_counts() {
        assert_eq!(parallel_map_n(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = parallel_map::<u64, u8, _>(&[], |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_surfaces_verbatim() {
        // A panicking task must propagate its own message — not a
        // PoisonError unwrap from one of the surviving slots.
        let items: Vec<u64> = (0..64).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_with(4, &items, |i, &x| {
                if i == 13 {
                    panic!("task 13 exploded on value {x}");
                }
                x
            })
        })
        .expect_err("the panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("task 13 exploded on value 13"),
            "original panic message must survive, got {msg:?}"
        );
    }

    #[test]
    fn earliest_of_concurrent_panics_wins() {
        // With every task panicking, the caller deterministically sees the
        // lowest item index regardless of scheduling.
        let items: Vec<u64> = (0..32).collect();
        let err = std::panic::catch_unwind(|| {
            parallel_map_with(4, &items, |i, _: &u64| -> u64 { panic!("boom at {i}") })
        })
        .expect_err("the panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        // Each worker dies on its first claimed item, so exactly indices
        // 0..4 panic and the earliest — 0 — wins deterministically.
        assert_eq!(msg, "boom at 0");
    }
}
