//! Adversity-hardened exchange driver: link-layer ARQ over the shield's
//! relay path, with live MICS session recovery.
//!
//! [`run_arq_exchange`] is the resilient counterpart of
//! [`relay_one_exchange`](crate::experiments::relay_one_exchange): instead
//! of firing one command and hoping, it runs an [`ArqTracker`] (reply
//! timeout → deterministic backoff → bounded retries) and, alongside it, a
//! [`SessionNegotiator`] fed with per-block level observations at the
//! shield's receive antenna. Persistent interference — an impulse-noise
//! storm parked on the session channel, say — trips the negotiator into a
//! rescan; when listen-before-talk clears a fresh channel, the driver
//! retunes the shield *and* the implant onto it and the ARQ machinery
//! carries the exchange to completion there.
//!
//! The driver adds no RNG of its own and leaves the medium's main stream
//! order untouched on the session channel (observations reuse the block's
//! cached receive view); runs are bit-reproducible for a given scenario
//! seed and fault plan.

use crate::scenario::Scenario;
use hb_channel::sim::Node;
use hb_dsp::units::db_from_ratio;
use hb_imd::arq::{ArqAction, ArqConfig, ArqTracker};
use hb_imd::commands::Command;
use hb_mics::band::MicsChannel;
use hb_mics::session::{SessionConfig, SessionNegotiator, SessionState};

/// Why a resilient exchange could not run or did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The scenario has no shield — there is no relay path to harden.
    NoShield,
    /// Every retry timed out; `attempts` transmissions went unanswered.
    Exhausted {
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::NoShield => write!(f, "scenario has no shield to relay through"),
            ExchangeError::Exhausted { attempts } => {
                write!(f, "exchange failed: all {attempts} attempts timed out")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Outcome of a delivered resilient exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeOutcome {
    /// Transmission attempts used (1 on a clean exchange).
    pub attempts: u32,
    /// Reply timeouts ridden out along the way.
    pub timeouts: u32,
    /// Session-channel changes forced by persistent interference.
    pub channel_moves: u64,
    /// Full band-busy scans that had to be restarted.
    pub band_busy_rescans: u64,
    /// Blocks simulated before the reply landed.
    pub blocks: u64,
    /// The channel the exchange finally completed on.
    pub final_channel: usize,
}

/// Runs one command exchange under ARQ with session recovery.
///
/// Per block, in order: the ARQ tracker is polled (a `Transmit` action
/// queues the command on the shield unless a copy is already pending or on
/// the air); the scenario advances one standard two-phase block; the
/// negotiator observes the shield-side channel level (skipped while the
/// shield or implant is transmitting or the shield is jamming — their own
/// energy is not interference); any newly decoded IMD reply completes the
/// tracker. When the negotiator re-establishes on a different channel,
/// shield and implant are retuned onto it mid-run.
///
/// Returns the outcome once the reply is delivered, or
/// [`ExchangeError::Exhausted`] after the retry budget is spent. The
/// budget in [`ArqConfig`] bounds the run: this function always
/// terminates.
pub fn run_arq_exchange(
    scenario: &mut Scenario,
    extra: &mut [&mut dyn Node],
    cmd: Command,
    arq_cfg: ArqConfig,
    session_cfg: SessionConfig,
) -> Result<ExchangeOutcome, ExchangeError> {
    if scenario.shield.is_none() {
        return Err(ExchangeError::NoShield);
    }
    let start_channel = scenario.channel();
    let mut arq = ArqTracker::new(arq_cfg);
    let mut negotiator = SessionNegotiator::established_on(session_cfg, MicsChannel(start_channel));
    let block_s = scenario.medium.config().block_len as f64 / scenario.medium.config().fs_hz;
    let mut session_channel = start_channel;
    let mut band_busy_rescans = 0u64;
    let mut blocks = 0u64;

    loop {
        let tick = scenario.medium.tick();

        // 1. ARQ: polled every block so the retry budget keeps burning
        // even while the session is down — an exchange that cannot find a
        // usable channel must *fail*, not spin. The command itself is
        // only queued while a session channel is held (a retransmission
        // into a rescan would be wasted heat); a budgeted attempt with
        // nothing on the air simply times out.
        match arq.poll(tick) {
            ArqAction::Transmit { .. } => {
                if negotiator.established() {
                    let shield = scenario.shield.as_mut().expect("checked above");
                    if shield.pending_commands() == 0 && !shield.transmitting() {
                        shield.queue_command(cmd);
                    }
                }
            }
            ArqAction::Wait => {}
            ArqAction::Done => {
                return Ok(ExchangeOutcome {
                    attempts: arq.stats.attempts,
                    timeouts: arq.stats.timeouts,
                    channel_moves: negotiator.interference_moves,
                    band_busy_rescans,
                    blocks,
                    final_channel: session_channel,
                });
            }
            ArqAction::Failed => {
                return Err(ExchangeError::Exhausted {
                    attempts: arq.stats.attempts,
                });
            }
        }

        // 2. One standard two-phase block, with session maintenance run
        // after every device has consumed but before the block ends (the
        // one window where this block's receive view is readable; views
        // the devices already read come from the cache, so the main noise
        // stream is identical to an unobserved run on those channels).
        let mut delivered = false;
        scenario.run_block_with(extra, |s| {
            let shield = s.shield.as_mut().expect("checked above");

            // 3. Feed the negotiator the shield-side level on its current
            // channel — unless the energy there is our own.
            match negotiator.current_channel() {
                Some(ch) => {
                    // Own transmissions and the protocol's own reply-window
                    // jamming are not interference; an *active* engagement
                    // is foreign-energy-triggered and must be observed —
                    // it is the stimulus that drives the channel change.
                    let own_energy = shield.transmitting()
                        || shield.passive_jamming_on(ch.0, tick)
                        || s.imd.transmitting(tick);
                    if !own_energy {
                        let view = s.medium.receive_view(shield.rx_antenna(), ch.0);
                        let mean_mw = view.iter().map(|c| c.norm_sq()).sum::<f64>()
                            / view.len().max(1) as f64;
                        negotiator.observe(db_from_ratio(mean_mw), block_s);
                    }
                }
                None => {
                    // Whole band busy: keep rescanning until something
                    // frees up.
                    band_busy_rescans += 1;
                    negotiator.rescan();
                }
            }

            // 4. Follow the negotiator onto a newly acquired channel.
            if let SessionState::Established { channel, .. } = *negotiator.state() {
                if channel.0 != session_channel {
                    shield.retune(channel.0, tick);
                    s.imd.retune(channel.0);
                    session_channel = channel.0;
                }
            }

            // 5. A decoded reply completes the exchange (reported on the
            // next poll so stats stay consistent).
            delivered = !shield.take_responses().is_empty();
        });
        blocks += 1;
        if delivered {
            arq.on_delivered();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioBuilder, ScenarioConfig};
    use hb_channel::fault::FaultPlan;

    fn outcome(cfg: ScenarioConfig) -> Result<ExchangeOutcome, ExchangeError> {
        let mut s = ScenarioBuilder::new(cfg).build();
        run_arq_exchange(
            &mut s,
            &mut [],
            Command::Interrogate,
            ArqConfig::default(),
            SessionConfig::default(),
        )
    }

    #[test]
    fn clean_channel_delivers_first_try() {
        let out = outcome(ScenarioConfig::paper(41)).expect("clean exchange must deliver");
        assert_eq!(out.attempts, 1);
        assert_eq!(out.timeouts, 0);
        assert_eq!(out.channel_moves, 0);
        assert_eq!(out.final_channel, 0);
    }

    #[test]
    fn no_shield_is_an_error_not_a_panic() {
        let err = outcome(ScenarioConfig::paper_no_shield(41)).unwrap_err();
        assert_eq!(err, ExchangeError::NoShield);
        assert!(err.to_string().contains("no shield"));
    }

    #[test]
    fn storm_on_session_channel_forces_move_and_delivery() {
        // A permanent impulse-noise storm parked on channel 0 (and only
        // channel 0): the negotiator must abandon it, LBT must clear a
        // quiet channel, and the exchange must complete there.
        let mut cfg = ScenarioConfig::paper(43);
        cfg.fault = FaultPlan {
            storm_start_prob: 1.0,
            storm_len_blocks: u32::MAX,
            storm_power_dbm: -60.0,
            storm_channel_mask: 1, // channel 0 only
            ..FaultPlan::none()
        };
        let out = outcome(cfg).expect("exchange must recover onto a clean channel");
        assert!(out.channel_moves >= 1, "storm must force a channel change");
        assert_ne!(
            out.final_channel, 0,
            "must not finish on the stormy channel"
        );
        assert!(
            out.timeouts >= 1,
            "the storm must cost at least one attempt"
        );
    }

    #[test]
    fn retry_budget_bounds_the_run() {
        // Storm over the whole band: nothing to move to, every attempt
        // times out, and the driver must terminate with Exhausted rather
        // than loop forever.
        let mut cfg = ScenarioConfig::paper(47);
        cfg.fault = FaultPlan {
            storm_start_prob: 1.0,
            storm_len_blocks: u32::MAX,
            storm_power_dbm: -50.0,
            storm_channel_mask: u16::MAX,
            ..FaultPlan::none()
        };
        let arq = ArqConfig {
            max_retries: 2,
            ..ArqConfig::default()
        };
        let mut s = ScenarioBuilder::new(cfg).build();
        let err = run_arq_exchange(
            &mut s,
            &mut [],
            Command::Interrogate,
            arq,
            SessionConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExchangeError::Exhausted { attempts: 3 });
    }
}
