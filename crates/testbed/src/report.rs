//! Experiment result rendering: paper-style text tables, ASCII bar charts,
//! and CSV export (hand-rolled — no serialization dependency needed).

use std::fmt::Write as _;

/// A labelled series of (x, y) points — one figure line/curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_string(),
            points,
        }
    }
}

/// A reproduced figure or table: id, caption, series, and free-form notes
/// comparing against the paper.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Paper identifier, e.g. "Figure 9" or "Table 1".
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Paper-vs-measured commentary.
    pub notes: Vec<String>,
}

impl Artifact {
    /// Creates an artifact.
    pub fn new(id: &str, caption: &str) -> Self {
        Artifact {
            id: id.to_string(),
            caption: caption.to_string(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// CSV rendering: `series,x,y` rows with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", csv_escape(&s.label));
            }
        }
        out
    }

    /// Human-readable rendering with an ASCII chart per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.caption);
        for s in &self.series {
            let _ = writeln!(out, "\n  [{}]", s.label);
            out.push_str(&ascii_chart(&s.points, 46));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\n  notes:");
            for n in &self.notes {
                let _ = writeln!(out, "   - {n}");
            }
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders an (x, y) series as right-aligned rows with proportional bars.
pub fn ascii_chart(points: &[(f64, f64)], width: usize) -> String {
    if points.is_empty() {
        return "   (no data)\n".to_string();
    }
    let ymax = points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::NEG_INFINITY, f64::max);
    let ymin = points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
    let span = (ymax - ymin).max(1e-12);
    let mut out = String::new();
    for &(x, y) in points {
        let frac = ((y - ymin) / span).clamp(0.0, 1.0);
        let bar = "#".repeat(1 + (frac * (width - 1) as f64) as usize);
        let _ = writeln!(out, "   {x:>10.3} | {y:>12.5} {bar}");
    }
    out
}

/// Renders a min/mean/std table row set (Table 1 style).
pub fn stat_table(title: &str, rows: &[(&str, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (name, value) in rows {
        let _ = writeln!(out, "  {name:<28} {value:>10.2}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_structure() {
        let mut a = Artifact::new("Figure X", "test");
        a.push_series(Series::new("line,one", vec![(1.0, 2.0), (3.0, 4.0)]));
        let csv = a.to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("\"line,one\",1,2"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn render_contains_id_and_notes() {
        let mut a = Artifact::new("Table 9", "caption here");
        a.push_series(Series::new("s", vec![(0.0, 1.0)]));
        a.note("matches the paper");
        let r = a.render();
        assert!(r.contains("Table 9"));
        assert!(r.contains("caption here"));
        assert!(r.contains("matches the paper"));
    }

    #[test]
    fn chart_handles_flat_and_empty() {
        assert!(ascii_chart(&[], 20).contains("no data"));
        let flat = ascii_chart(&[(0.0, 5.0), (1.0, 5.0)], 20);
        assert_eq!(flat.lines().count(), 2);
    }

    #[test]
    fn stat_table_formats() {
        let t = stat_table("Pthresh", &[("Minimum", -11.1), ("Average", -4.5)]);
        assert!(t.contains("Pthresh"));
        assert!(t.contains("Minimum"));
        assert!(t.contains("-11.10"));
    }
}
