//! Experiment result rendering: paper-style text tables, ASCII bar charts,
//! and CSV export (hand-rolled — no serialization dependency needed).

use crate::checkpoint::RunHealth;
use crate::montecarlo::Estimate;
use std::fmt::Write as _;

/// A labelled series of (x, y) points — one figure line/curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Optional per-point confidence annotation, parallel to `points`:
    /// `(ci_lo, ci_hi, n)` where `n` is the pooled denominator. Present
    /// on series produced by the adaptive Monte-Carlo engine
    /// ([`crate::montecarlo`]); `None` for deterministic curves.
    pub ci: Option<Vec<(f64, f64, u64)>>,
}

impl Series {
    /// Creates a series without confidence annotations.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_string(),
            points,
            ci: None,
        }
    }

    /// Creates a series from adaptive Monte-Carlo estimates: the point is
    /// the pooled mean, the annotation its interval and sample size.
    pub fn from_estimates(label: &str, data: &[(f64, Estimate)]) -> Self {
        Series {
            label: label.to_string(),
            points: data.iter().map(|&(x, e)| (x, e.mean)).collect(),
            ci: Some(data.iter().map(|&(_, e)| (e.ci_lo, e.ci_hi, e.n)).collect()),
        }
    }
}

/// A reproduced figure or table: id, caption, series, and free-form notes
/// comparing against the paper.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Paper identifier, e.g. "Figure 9" or "Table 1".
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Data series.
    pub series: Vec<Series>,
    /// Paper-vs-measured commentary.
    pub notes: Vec<String>,
    /// Run health, set by the crash-safe driver path
    /// (`registry::run_one_with`) when the run was degraded (quarantined
    /// trials) or deadline-truncated. `None` — the overwhelmingly common
    /// case — renders nothing, so healthy artifacts stay byte-identical
    /// to pre-checkpoint output.
    pub health: Option<RunHealth>,
}

impl Artifact {
    /// Creates an artifact.
    pub fn new(id: &str, caption: &str) -> Self {
        Artifact {
            id: id.to_string(),
            caption: caption.to_string(),
            series: Vec::new(),
            notes: Vec::new(),
            health: None,
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// CSV rendering: `series,x,y` rows with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", csv_escape(&s.label));
            }
        }
        out
    }

    /// Confidence-aware CSV rendering (`hb_eval --ci`): adds
    /// `ci_lo,ci_hi,n` columns, left empty on points without annotations —
    /// the plain [`Artifact::to_csv`] header stays stable for existing
    /// downstream tooling.
    pub fn to_csv_ci(&self) -> String {
        let mut out = String::from("series,x,y,ci_lo,ci_hi,n\n");
        for s in &self.series {
            for (pi, &(x, y)) in s.points.iter().enumerate() {
                let tail = match s.ci.as_ref().and_then(|ci| ci.get(pi)) {
                    Some(&(lo, hi, n)) => format!("{lo},{hi},{n}"),
                    None => ",,".to_string(),
                };
                let _ = writeln!(out, "{},{x},{y},{tail}", csv_escape(&s.label));
            }
        }
        out
    }

    /// JSON rendering (hand-rolled, like [`Artifact::to_csv`] — no
    /// serialization dependency): an object with `id`, `caption`,
    /// `series` (each `{label, points: [[x, y], ...]}`), and `notes`.
    ///
    /// Numbers use Rust's shortest round-trip `Display` form, so the
    /// output is deterministic for deterministic inputs. JSON has no
    /// NaN/Infinity; non-finite values render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"caption\": {},", json_string(&self.caption));
        if let Some(h) = self.health.filter(|h| h.flagged()) {
            let _ = writeln!(out, "  \"degraded\": {},", h.degraded());
            let _ = writeln!(out, "  \"quarantined\": {},", h.quarantined);
            let _ = writeln!(out, "  \"truncated\": {},", h.truncated);
        }
        out.push_str("  \"series\": [\n");
        for (si, s) in self.series.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"label\": {}, \"points\": [",
                json_string(&s.label)
            );
            for (pi, &(x, y)) in s.points.iter().enumerate() {
                if pi > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", json_number(x), json_number(y));
            }
            out.push(']');
            if let Some(ci) = &s.ci {
                out.push_str(", \"ci\": [");
                for (pi, &(lo, hi, n)) in ci.iter().enumerate() {
                    if pi > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{}, {}, {n}]", json_number(lo), json_number(hi));
                }
                out.push(']');
            }
            let _ = writeln!(
                out,
                "}}{}",
                if si + 1 < self.series.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n  \"notes\": [\n");
        for (ni, n) in self.notes.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                json_string(n),
                if ni + 1 < self.notes.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable rendering with an ASCII chart per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.caption);
        if let Some(h) = self.health.filter(|h| h.flagged()) {
            if h.degraded() {
                let _ = writeln!(
                    out,
                    "  !! degraded run: {} trial(s) quarantined after panicking",
                    h.quarantined
                );
            }
            if h.truncated {
                let _ = writeln!(out, "  !! truncated run: deadline expired; partial data");
            }
        }
        for s in &self.series {
            let _ = writeln!(out, "\n  [{}]", s.label);
            match &s.ci {
                Some(ci) => out.push_str(&ascii_chart_ci(&s.points, ci, 32)),
                None => out.push_str(&ascii_chart(&s.points, 46)),
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\n  notes:");
            for n in &self.notes {
                let _ = writeln!(out, "   - {n}");
            }
        }
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal (shared by
/// [`Artifact::to_json`] and the `hb_eval` listing renderer).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for NaN/Infinity).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes `s` as a CSV field, quoting and doubling quotes as needed
/// (shared by [`Artifact::to_csv`] and the `hb_eval` listing renderer).
pub fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders an (x, y) series as right-aligned rows with proportional bars.
pub fn ascii_chart(points: &[(f64, f64)], width: usize) -> String {
    if points.is_empty() {
        return "   (no data)\n".to_string();
    }
    let ymax = points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::NEG_INFINITY, f64::max);
    let ymin = points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
    let span = (ymax - ymin).max(1e-12);
    let mut out = String::new();
    for &(x, y) in points {
        let frac = ((y - ymin) / span).clamp(0.0, 1.0);
        let bar = "#".repeat(1 + (frac * (width - 1) as f64) as usize);
        let _ = writeln!(out, "   {x:>10.3} | {y:>12.5} {bar}");
    }
    out
}

/// [`ascii_chart`] with a 95% interval column: each row shows the point
/// estimate, its `[lo, hi]` interval and pooled sample size before the
/// proportional bar.
pub fn ascii_chart_ci(points: &[(f64, f64)], ci: &[(f64, f64, u64)], width: usize) -> String {
    if points.is_empty() {
        return "   (no data)\n".to_string();
    }
    let ymax = points
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::NEG_INFINITY, f64::max);
    let ymin = points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
    let span = (ymax - ymin).max(1e-12);
    let mut out = String::new();
    for (pi, &(x, y)) in points.iter().enumerate() {
        let frac = ((y - ymin) / span).clamp(0.0, 1.0);
        let bar = "#".repeat(1 + (frac * (width - 1) as f64) as usize);
        match ci.get(pi) {
            Some(&(lo, hi, n)) => {
                let _ = writeln!(
                    out,
                    "   {x:>10.3} | {y:>8.4} [{lo:>7.4}, {hi:>7.4}] n={n:<7} {bar}"
                );
            }
            None => {
                let _ = writeln!(out, "   {x:>10.3} | {y:>12.5} {bar}");
            }
        }
    }
    out
}

/// Renders a min/mean/std table row set (Table 1 style).
pub fn stat_table(title: &str, rows: &[(&str, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (name, value) in rows {
        let _ = writeln!(out, "  {name:<28} {value:>10.2}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_structure() {
        let mut a = Artifact::new("Figure X", "test");
        a.push_series(Series::new("line,one", vec![(1.0, 2.0), (3.0, 4.0)]));
        let csv = a.to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("\"line,one\",1,2"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn json_structure_and_escaping() {
        let mut a = Artifact::new("Figure X", "quote \" backslash \\ done");
        a.push_series(Series::new("s1", vec![(1.0, 2.5), (3.0, 4.0)]));
        a.note("line one\nline two\ttabbed");
        let json = a.to_json();
        assert!(json.contains("\"id\": \"Figure X\""));
        assert!(json.contains("\"caption\": \"quote \\\" backslash \\\\ done\""));
        assert!(json.contains("\"points\": [[1, 2.5], [3, 4]]"));
        assert!(json.contains("\"line one\\nline two\\ttabbed\""));
    }

    #[test]
    fn json_non_finite_values_become_null() {
        let mut a = Artifact::new("F", "c");
        a.push_series(Series::new(
            "s",
            vec![(0.0, f64::NAN), (1.0, f64::INFINITY)],
        ));
        let json = a.to_json();
        assert!(json.contains("[[0, null], [1, null]]"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn json_empty_series_and_notes() {
        let a = Artifact::new("Empty", "nothing yet");
        let json = a.to_json();
        assert!(json.contains("\"series\": [\n  ]"));
        assert!(json.contains("\"notes\": [\n  ]"));
    }

    fn ci_artifact() -> Artifact {
        let mut a = Artifact::new("Figure Y", "ci test");
        a.push_series(Series::from_estimates(
            "ber",
            &[
                (
                    0.0,
                    Estimate {
                        mean: 0.5,
                        ci_lo: 0.4,
                        ci_hi: 0.6,
                        n: 96,
                    },
                ),
                (
                    20.0,
                    Estimate {
                        mean: 0.25,
                        ci_lo: 0.125,
                        ci_hi: 0.375,
                        n: 48,
                    },
                ),
            ],
        ));
        a.push_series(Series::new("plain", vec![(1.0, 2.0)]));
        a
    }

    #[test]
    fn ci_csv_carries_interval_columns() {
        let csv = ci_artifact().to_csv_ci();
        assert!(csv.starts_with("series,x,y,ci_lo,ci_hi,n\n"));
        assert!(csv.contains("ber,0,0.5,0.4,0.6,96"));
        assert!(csv.contains("ber,20,0.25,0.125,0.375,48"));
        // Series without annotations keep the column count with blanks.
        assert!(csv.contains("plain,1,2,,,"));
        // The plain CSV stays byte-stable: no CI columns leak in.
        let plain = ci_artifact().to_csv();
        assert!(plain.starts_with("series,x,y\n"));
        assert!(plain.contains("ber,0,0.5\n"));
    }

    #[test]
    fn ci_json_adds_ci_array_only_when_present() {
        let json = ci_artifact().to_json();
        assert!(json.contains("\"ci\": [[0.4, 0.6, 96], [0.125, 0.375, 48]]"));
        // The unannotated series has no "ci" key on its line.
        let plain_line = json
            .lines()
            .find(|l| l.contains("\"plain\""))
            .expect("plain series rendered");
        assert!(!plain_line.contains("\"ci\""));
    }

    #[test]
    fn ci_render_shows_intervals() {
        let text = ci_artifact().render();
        assert!(text.contains("[ 0.4000,  0.6000] n=96"));
    }

    #[test]
    fn render_contains_id_and_notes() {
        let mut a = Artifact::new("Table 9", "caption here");
        a.push_series(Series::new("s", vec![(0.0, 1.0)]));
        a.note("matches the paper");
        let r = a.render();
        assert!(r.contains("Table 9"));
        assert!(r.contains("caption here"));
        assert!(r.contains("matches the paper"));
    }

    #[test]
    fn chart_handles_flat_and_empty() {
        assert!(ascii_chart(&[], 20).contains("no data"));
        let flat = ascii_chart(&[(0.0, 5.0), (1.0, 5.0)], 20);
        assert_eq!(flat.lines().count(), 2);
    }

    #[test]
    fn health_fields_render_only_when_flagged() {
        let mut a = Artifact::new("Figure Z", "health test");
        a.push_series(Series::new("s", vec![(0.0, 1.0)]));
        // Healthy (None) and explicitly-clean health are byte-identical
        // to pre-checkpoint output: no health keys at all.
        let clean_json = a.to_json();
        assert!(!clean_json.contains("degraded") && !clean_json.contains("truncated"));
        let baseline = (a.to_json(), a.render());
        a.health = Some(RunHealth::default());
        assert_eq!((a.to_json(), a.render()), baseline);
        // Flagged health surfaces in JSON and the rendered text.
        a.health = Some(RunHealth {
            quarantined: 3,
            truncated: true,
        });
        let json = a.to_json();
        assert!(json.contains("\"degraded\": true"));
        assert!(json.contains("\"quarantined\": 3"));
        assert!(json.contains("\"truncated\": true"));
        let text = a.render();
        assert!(text.contains("3 trial(s) quarantined"));
        assert!(text.contains("truncated run"));
    }

    #[test]
    fn stat_table_formats() {
        let t = stat_table("Pthresh", &[("Minimum", -11.1), ("Average", -4.5)]);
        assert!(t.contains("Pthresh"));
        assert!(t.contains("Minimum"));
        assert!(t.contains("-11.10"));
    }
}
