//! Scenario assembly: wires the IMD, shield, and attacker/eavesdropper
//! devices into a medium with the calibrated channel model, and provides
//! the two-phase run loop.
//!
//! Every experiment builds one or more scenarios through
//! [`ScenarioBuilder`]; rebuilding per repetition (with a fresh seed)
//! redraws shadowing and coupling phases, which is what makes marginal
//! locations produce fractional success probabilities, as in the paper's
//! Figs. 11–13.

use crate::layout::Fig6Layout;
use hb_channel::fading::Fading;
use hb_channel::fault::FaultPlan;
use hb_channel::geometry::Placement;
use hb_channel::medium::{AntennaId, Medium, MediumConfig};
use hb_channel::pathloss::PathlossModel;
use hb_channel::sim::Node;
use hb_imd::device::ImdDevice;
use hb_imd::models::{ImdConfig, SecurityMode};
use hb_imd::wakeup::WakeConfig;
use hb_shield::shield::{Shield, ShieldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which IMD model the scenario protects (the paper evaluates both and
/// pools the results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImdModel {
    /// Medtronic Virtuoso DR ICD.
    VirtuosoIcd,
    /// Medtronic Concerto CRT.
    ConcertoCrt,
}

impl ImdModel {
    /// The device configuration for this model.
    pub fn config(&self, channel: usize) -> ImdConfig {
        match self {
            ImdModel::VirtuosoIcd => ImdConfig::virtuoso_icd(channel),
            ImdModel::ConcertoCrt => ImdConfig::concerto_crt(channel),
        }
    }
}

/// Scenario-level configuration (the calibrated constants of DESIGN.md).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Session channel.
    pub channel: usize,
    /// Which IMD is implanted.
    pub imd_model: ImdModel,
    /// Whether the shield is worn.
    pub shield_enabled: bool,
    /// Pathloss model.
    pub pathloss: PathlossModel,
    /// Small-scale fading statistics for over-the-air links.
    pub fading: Fading,
    /// IMD receiver noise floor, dBm. Implant receivers are
    /// noise-figure-limited (~16 dB NF): −103 dBm over a 300 kHz channel.
    /// This sets the shield-absent attack range (~14 m at FCC power).
    pub imd_noise_floor_dbm: f64,
    /// Overrides applied to the shield configuration, if any.
    pub shield_tweak: Option<fn(&mut ShieldConfig)>,
    /// Jamming margin override (Fig. 8 sweeps this).
    pub jam_margin_db: Option<f64>,
    /// Air-side coupling between the shield's (body-contact) antennas and
    /// the implant, dB. A worn antenna pressed against the chest couples
    /// into tissue ~6 dB better than the 27 dB far-field floor any
    /// stand-off adversary is limited to — this contact advantage is what
    /// lets an FCC-power shield out-jam an FCC-power adversary at the IMD
    /// (Fig. 11/12) while the 100× adversary still wins up close (Fig. 13).
    pub shield_body_coupling_db: f64,
    /// Pathloss-culling margin handed to [`MediumConfig::cull_margin_db`].
    /// `−∞` (the paper default) reproduces the dense engine bit for bit;
    /// ward-scale experiments set a finite margin so the O(n²) pair walk
    /// only touches audible links.
    pub cull_margin_db: f64,
    /// Deterministic channel-fault plan. The dropout/storm fields are
    /// forwarded to the medium; the shield-outage fields are forwarded to
    /// every installed shield's [`ShieldConfig::outage`]. The default
    /// ([`FaultPlan::none`]) is bit-identical to a fault-free build.
    pub fault: FaultPlan,
    /// Protocol-security posture of the primary implant's firmware. The
    /// paper default ([`SecurityMode::Open`]) leaves the device exactly
    /// as the golden-pinned engine models it; the defense experiments
    /// flip it to study IMDfence-style in-device sessions.
    pub imd_security: SecurityMode,
    /// Zero-power wake-up gate on the primary implant (`None`, the paper
    /// default, is the stock always-on receiver).
    pub imd_wake: Option<WakeConfig>,
}

impl ScenarioConfig {
    /// Paper-faithful defaults.
    pub fn paper(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            channel: 0,
            imd_model: ImdModel::VirtuosoIcd,
            shield_enabled: true,
            pathloss: PathlossModel::mics_indoor(),
            fading: Fading::None,
            imd_noise_floor_dbm: -103.0,
            shield_tweak: None,
            jam_margin_db: None,
            shield_body_coupling_db: 21.0,
            cull_margin_db: f64::NEG_INFINITY,
            fault: FaultPlan::none(),
            imd_security: SecurityMode::Open,
            imd_wake: None,
        }
    }

    /// Same, without the shield (the "Shield Absent" bars).
    pub fn paper_no_shield(seed: u64) -> Self {
        ScenarioConfig {
            shield_enabled: false,
            ..Self::paper(seed)
        }
    }
}

/// An additional shielded patient sharing the medium (ward scenarios):
/// their own implant plus the shield worn over it.
pub struct Patient {
    /// The patient's implant.
    pub imd: ImdDevice,
    /// The shield worn over it.
    pub shield: Shield,
}

/// A built scenario: medium + IMD + optional shield, with helpers to add
/// adversary antennas and drive the loop.
pub struct Scenario {
    /// The shared medium.
    pub medium: Medium,
    /// The protected device.
    pub imd: ImdDevice,
    /// The shield, when worn.
    pub shield: Option<Shield>,
    /// Additional shielded patients in the same medium (empty outside
    /// ward scenarios), in [`ScenarioBuilder::add_patient`] order.
    pub patients: Vec<Patient>,
    /// The layout used.
    pub layout: Fig6Layout,
}

/// A patient added via [`ScenarioBuilder::add_patient`], waiting for
/// `build` to construct the device.
struct PendingPatient {
    imd_ant: AntennaId,
    imd_cfg: hb_imd::models::ImdConfig,
    shield: Shield,
}

/// Builder that must know all antennas before link gains are drawn.
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
    medium: Medium,
    layout: Fig6Layout,
    imd_ant: AntennaId,
    shield: Option<Shield>,
    patients: Vec<PendingPatient>,
    rng: StdRng,
}

impl ScenarioBuilder {
    /// Starts a scenario: places the IMD at the origin (in body) and the
    /// shield (if enabled) at the necklace offset.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let layout = Fig6Layout::paper();
        let medium_cfg = MediumConfig {
            cull_margin_db: cfg.cull_margin_db,
            fault: cfg.fault,
            ..MediumConfig::default()
        };
        let mut medium = Medium::new(medium_cfg, rng.gen());
        let imd_ant = medium.add_antenna(Placement::los("imd", 0.0, 0.0).implanted());

        let shield = if cfg.shield_enabled {
            Some(install_shield(
                &cfg,
                &mut medium,
                &mut rng,
                cfg.imd_model.config(cfg.channel).serial,
                cfg.channel,
                imd_ant,
                (layout.shield_offset_m, 0.0),
            ))
        } else {
            None
        };

        ScenarioBuilder {
            cfg,
            medium,
            layout,
            imd_ant,
            shield,
            patients: Vec::new(),
            rng,
        }
    }

    /// Adds a second shielded patient to the medium: their implant at
    /// `offset_m` plus a shield worn at the necklace offset beside it,
    /// with the same body-contact coupling treatment as the primary
    /// patient. Returns the index into [`Scenario::patients`].
    ///
    /// Use a `model` whose serial differs from the primary patient's so
    /// each shield relays only to its own implant (ward scenarios pair a
    /// Virtuoso with a Concerto, as a real ward would mix devices).
    pub fn add_patient(&mut self, offset_m: (f64, f64), model: ImdModel) -> usize {
        self.add_patient_cfg(offset_m, model.config(self.cfg.channel))
    }

    /// [`add_patient`](Self::add_patient) with an explicit device
    /// configuration: ward-scale scenarios hand every bed a unique serial
    /// (so each shield relays only to its own implant) and spread the
    /// population across MICS channels. The shield is installed on the
    /// implant's own channel, which may differ from the scenario's session
    /// channel.
    pub fn add_patient_cfg(&mut self, offset_m: (f64, f64), imd_cfg: ImdConfig) -> usize {
        let imd_ant = self
            .medium
            .add_antenna(Placement::los("ward-imd", offset_m.0, offset_m.1).implanted());
        let shield = install_shield(
            &self.cfg,
            &mut self.medium,
            &mut self.rng,
            imd_cfg.serial,
            imd_cfg.channel,
            imd_ant,
            (offset_m.0 + self.layout.shield_offset_m, offset_m.1),
        );
        self.patients.push(PendingPatient {
            imd_ant,
            imd_cfg,
            shield,
        });
        self.patients.len() - 1
    }

    /// Adds an antenna at a numbered Fig. 6 location.
    pub fn add_at_location(&mut self, index: usize, label: &str) -> AntennaId {
        let placement = self.layout.location(index).placement(label);
        self.medium.add_antenna(placement)
    }

    /// Adds an antenna at an arbitrary placement.
    pub fn add_at(&mut self, placement: Placement) -> AntennaId {
        self.medium.add_antenna(placement)
    }

    /// The configuration this builder was started with (defense installers
    /// read the session channel and device identity from here).
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Finalizes: draws all link gains and constructs the devices.
    pub fn build(mut self) -> Scenario {
        self.medium.build_links(&self.cfg.pathloss, self.cfg.fading);
        self.medium
            .set_noise_floor_dbm(self.imd_ant, self.cfg.imd_noise_floor_dbm);
        let mut imd_cfg = self.cfg.imd_model.config(self.cfg.channel);
        imd_cfg.security = self.cfg.imd_security.clone();
        imd_cfg.wake = self.cfg.imd_wake.clone();
        let imd = ImdDevice::new(imd_cfg, self.imd_ant, StdRng::seed_from_u64(self.rng.gen()));
        let patients = self
            .patients
            .into_iter()
            .map(|p| {
                self.medium
                    .set_noise_floor_dbm(p.imd_ant, self.cfg.imd_noise_floor_dbm);
                Patient {
                    imd: ImdDevice::new(
                        p.imd_cfg,
                        p.imd_ant,
                        StdRng::seed_from_u64(self.rng.gen()),
                    ),
                    shield: p.shield,
                }
            })
            .collect();
        Scenario {
            medium: self.medium,
            imd,
            shield: self.shield,
            patients,
            layout: self.layout,
        }
    }
}

/// Installs a shield over the implant at `imd_ant`: paper-default config
/// (plus the scenario's overrides), the two shield antennas at
/// `position`, and the reciprocal body-contact couplings to the implant
/// (body loss plus the contact coupling, random phases).
///
/// The RNG draw order — install seed, then one phase per shield antenna —
/// is pinned by the golden tests; `build_links` preserves these wired
/// gains.
fn install_shield(
    cfg: &ScenarioConfig,
    medium: &mut Medium,
    rng: &mut StdRng,
    serial: hb_phy::packet::Serial,
    channel: usize,
    imd_ant: AntennaId,
    position: (f64, f64),
) -> Shield {
    let mut scfg = ShieldConfig::paper_defaults(serial, channel);
    if let Some(margin) = cfg.jam_margin_db {
        scfg.jam_margin_db = margin;
    }
    if cfg.fault.has_outages() {
        scfg.outage = Some(hb_shield::shield::OutageSchedule {
            start_s: cfg.fault.outage_start_s,
            len_s: cfg.fault.outage_len_s,
            period_s: cfg.fault.outage_period_s,
        });
    }
    if let Some(tweak) = cfg.shield_tweak {
        tweak(&mut scfg);
    }
    let shield = Shield::install(scfg, medium, position, rng.gen());
    let loss_db = cfg.pathloss.body_loss_db + cfg.shield_body_coupling_db;
    let amp = hb_dsp::units::ratio_from_db(-loss_db).sqrt();
    for ant in [shield.jam_antenna(), shield.rx_antenna()] {
        let g = hb_dsp::complex::C64::from_polar(amp, rng.gen::<f64>() * std::f64::consts::TAU);
        medium.set_gain(ant, imd_ant, g);
        medium.set_gain(imd_ant, ant, g);
    }
    shield
}

impl Scenario {
    /// Runs `blocks` simulation blocks, polling the IMD, the shield, any
    /// additional patients, and any extra nodes in the standard two-phase
    /// order.
    pub fn run_blocks(&mut self, extra: &mut [&mut dyn Node], blocks: u64) {
        for _ in 0..blocks {
            self.run_block_with(extra, |_| {});
        }
    }

    /// Runs one block in the standard two-phase order, invoking `observe`
    /// after every device has consumed but *before* the block ends —
    /// the only point where a supervisor (e.g. the session-recovery
    /// driver in [`crate::recovery`]) may read this block's
    /// [`Medium::receive_view`]: staging freezes at the first receive, so
    /// observing any earlier would forbid the block's transmissions, and
    /// any later reads the next block.
    pub fn run_block_with(&mut self, extra: &mut [&mut dyn Node], observe: impl FnOnce(&mut Self)) {
        self.imd.produce(&mut self.medium);
        if let Some(shield) = self.shield.as_mut() {
            shield.produce(&mut self.medium);
        }
        for p in self.patients.iter_mut() {
            p.imd.produce(&mut self.medium);
            p.shield.produce(&mut self.medium);
        }
        for n in extra.iter_mut() {
            n.produce(&mut self.medium);
        }
        self.imd.consume(&mut self.medium);
        if let Some(shield) = self.shield.as_mut() {
            shield.consume(&mut self.medium);
        }
        for p in self.patients.iter_mut() {
            p.imd.consume(&mut self.medium);
            p.shield.consume(&mut self.medium);
        }
        for n in extra.iter_mut() {
            n.consume(&mut self.medium);
        }
        observe(self);
        self.medium.end_block();
    }

    /// Runs for at least `seconds` of simulated time.
    pub fn run_seconds(&mut self, extra: &mut [&mut dyn Node], seconds: f64) {
        let blocks = self.medium.blocks_for_duration(seconds);
        self.run_blocks(extra, blocks);
    }

    /// Convenience: the session channel.
    pub fn channel(&self) -> usize {
        self.imd.config().channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::units::db_from_ratio;

    #[test]
    fn builds_with_and_without_shield() {
        let s = ScenarioBuilder::new(ScenarioConfig::paper(1)).build();
        assert!(s.shield.is_some());
        assert_eq!(s.medium.antenna_count(), 3); // imd + 2 shield antennas
        let s2 = ScenarioBuilder::new(ScenarioConfig::paper_no_shield(1)).build();
        assert!(s2.shield.is_none());
        assert_eq!(s2.medium.antenna_count(), 1);
    }

    #[test]
    fn two_patient_ward_builds_with_distinct_identities() {
        let mut b = ScenarioBuilder::new(ScenarioConfig::paper(5));
        let idx = b.add_patient((6.0, 0.0), ImdModel::ConcertoCrt);
        let s = b.build();
        assert_eq!(idx, 0);
        assert_eq!(s.patients.len(), 1);
        // 2 × (imd + 2 shield antennas).
        assert_eq!(s.medium.antenna_count(), 6);
        let p = &s.patients[0];
        assert_ne!(p.imd.config().serial, s.imd.config().serial);
        // Patient B's body-contact coupling matches the primary's
        // calibration: IMD-at-own-shield ≈ −85 dBm.
        let g = s.medium.gain(p.imd.antenna(), p.shield.rx_antenna());
        let rx_dbm = p.imd.config().tx_power_dbm + db_from_ratio(g.norm_sq());
        assert!(
            (rx_dbm - (-85.0)).abs() < 1.0,
            "ward IMD at shield: {rx_dbm} dBm"
        );
        // Cross-patient link is far weaker than the body-contact link.
        let cross = s.medium.gain(s.imd.antenna(), p.shield.rx_antenna());
        assert!(db_from_ratio(cross.norm_sq()) < db_from_ratio(g.norm_sq()) - 10.0);
    }

    #[test]
    fn imd_to_shield_level_matches_calibration() {
        // Expected: −24 dBm tx − 40 dB body − 21 dB contact coupling = −85.
        let s = ScenarioBuilder::new(ScenarioConfig::paper(7)).build();
        let shield = s.shield.as_ref().unwrap();
        let g = s.medium.gain(s.imd.antenna(), shield.rx_antenna());
        let link_db = db_from_ratio(g.norm_sq());
        let rx_dbm = s.imd.config().tx_power_dbm + link_db;
        assert!(
            (rx_dbm - (-85.0)).abs() < 1.0,
            "IMD at shield: {rx_dbm} dBm"
        );
    }

    #[test]
    fn shield_couplings_survive_build() {
        let s = ScenarioBuilder::new(ScenarioConfig::paper(3)).build();
        let shield = s.shield.as_ref().unwrap();
        // Self-loop ≈ −3 dB; jam→rx ≈ −30 dB (not overwritten by
        // build_links).
        let hself = s.medium.gain(shield.rx_antenna(), shield.rx_antenna());
        let hjr = s.medium.gain(shield.jam_antenna(), shield.rx_antenna());
        assert!((db_from_ratio(hself.norm_sq()) - (-3.0)).abs() < 0.5);
        assert!((db_from_ratio(hjr.norm_sq()) - (-30.0)).abs() < 0.5);
    }

    #[test]
    fn adversary_location_levels_are_ordered() {
        let cfg = ScenarioConfig::paper(11);
        let mut b = ScenarioBuilder::new(cfg);
        let a1 = b.add_at_location(1, "adv1");
        let a9 = b.add_at_location(9, "adv9");
        let a18 = b.add_at_location(18, "adv18");
        let s = b.build();
        let to_imd = |a: AntennaId| db_from_ratio(s.medium.gain(a, s.imd.antenna()).norm_sq());
        assert!(to_imd(a1) > to_imd(a9));
        assert!(to_imd(a9) > to_imd(a18));
    }

    #[test]
    fn seeds_give_different_shadowing() {
        let mut losses = Vec::new();
        for seed in 0..6 {
            let mut b = ScenarioBuilder::new(ScenarioConfig::paper(seed));
            let a = b.add_at_location(8, "adv");
            let s = b.build();
            losses.push(db_from_ratio(s.medium.gain(a, s.imd.antenna()).norm_sq()));
        }
        let min = losses.iter().cloned().fold(f64::MAX, f64::min);
        let max = losses.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max - min > 0.5,
            "shadowing should vary across seeds: {losses:?}"
        );
    }

    #[test]
    fn run_loop_advances_time() {
        let mut s = ScenarioBuilder::new(ScenarioConfig::paper(2)).build();
        s.run_seconds(&mut [], 0.01);
        assert!(s.medium.time_s() >= 0.01);
    }
}
