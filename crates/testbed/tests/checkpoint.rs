//! Crash-safety suite: interrupted-vs-uninterrupted equivalence of the
//! adaptive Monte-Carlo engine, journal corruption handling, quarantine
//! semantics, and deadline truncation.
//!
//! The in-process "crash" here is faithful to a real kill: the engine
//! journals after every round, so a run killed between rounds leaves
//! exactly the round-`k` journal on disk. These tests capture that
//! journal mid-run (the engine's own bytes, copied the moment the first
//! trial of round `k+1` executes), restore it into a fresh checkpoint
//! directory, and resume — then compare estimates and final journals
//! byte-for-byte against the uninterrupted run. The end-to-end version
//! with a real `exit()` lives in `crates/bench/tests/crash_resume.rs`.

use hb_testbed::checkpoint::{Journal, JournalKind, RunCtl};
use hb_testbed::experiments::test_seed;
use hb_testbed::montecarlo::{
    adaptive_mean_ctl, adaptive_proportions_ctl, trial_seed, Estimate, McConfig, McRun,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Mutex;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hb_ckpt_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(initial: usize, max: usize, target: f64) -> McConfig {
    McConfig {
        initial_trials: initial,
        max_trials: max,
        target_half_width: target,
        z: hb_dsp::stats::Z_95,
        bootstrap_resamples: 100,
    }
}

/// The deterministic p≈0.5 pseudo-coin from the engine's unit tests: 16
/// "bits" per trial, derived only from the trial seed.
fn coin_trial(seed: u64) -> (u64, u64) {
    let mut s = 0;
    for b in 0..16u64 {
        let x = trial_seed(seed, b);
        s += (x.count_ones() as u64) & 1;
    }
    (s, 16)
}

/// The journal path the engine will claim for `(master, K=1, tag)` under
/// `dir` — computed through the public claim API on a probe control.
fn journal_path(dir: &std::path::Path, master: u64, k: usize, tag: &str) -> PathBuf {
    RunCtl::new(Some(dir.to_path_buf()), false, None)
        .claim_journal(master, k, tag)
        .expect("journaling enabled")
}

/// Runs a journaled proportion run to completion at `workers`, capturing
/// the engine-written journal bytes present on disk when global trial
/// `boundary` first executes — i.e. the exact file a crash between the
/// round ending at `boundary` and the next one would leave behind.
/// Returns `(uninterrupted run, captured round-k journal bytes, final
/// journal bytes)`.
fn run_and_capture(
    workers: usize,
    c: &McConfig,
    master: u64,
    boundary: u64,
) -> (McRun<1>, Vec<u8>, Vec<u8>) {
    let dir = tmp_dir(&format!("cap_{workers}_{master}_{boundary}"));
    let ctl = RunCtl::new(Some(dir.clone()), false, None);
    let jpath = journal_path(&dir, master, 1, "p");
    let captured: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let capture_seed = trial_seed(master, boundary);
    let run = adaptive_proportions_ctl(workers, c, master, Some(&ctl), |s| {
        if s == capture_seed {
            *captured.lock().unwrap() = std::fs::read(&jpath).ok();
        }
        [coin_trial(s)]
    });
    let captured = captured
        .lock()
        .unwrap()
        .take()
        .expect("boundary trial must have run (pick boundary < total trials)");
    let final_journal = std::fs::read(&jpath).expect("final journal written");
    let _ = std::fs::remove_dir_all(&dir);
    (run, captured, final_journal)
}

/// Resumes a proportion run from `journal_bytes` in a fresh directory and
/// returns the result plus the resumed run's final journal bytes.
fn resume_from(
    workers: usize,
    c: &McConfig,
    master: u64,
    journal_bytes: &[u8],
    label: &str,
) -> (McRun<1>, Vec<u8>) {
    let dir = tmp_dir(label);
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = journal_path(&dir, master, 1, "p");
    std::fs::write(&jpath, journal_bytes).unwrap();
    let ctl = RunCtl::new(Some(dir.clone()), true, None);
    let run = adaptive_proportions_ctl(workers, c, master, Some(&ctl), |s| [coin_trial(s)]);
    let final_journal = std::fs::read(&jpath).expect("resumed run rewrote the journal");
    let _ = std::fs::remove_dir_all(&dir);
    (run, final_journal)
}

#[test]
fn journaling_does_not_perturb_a_healthy_run() {
    // The acceptance bar for the goldens: enabling checkpoints must not
    // change a single bit of a healthy run's output.
    let c = cfg(4, 256, 0.02);
    let seed = test_seed(17);
    let bare = adaptive_proportions_ctl(1, &c, seed, None, |s| [coin_trial(s)]);
    let dir = tmp_dir("healthy");
    let ctl = RunCtl::new(Some(dir.clone()), false, None);
    let journaled = adaptive_proportions_ctl(1, &c, seed, Some(&ctl), |s| [coin_trial(s)]);
    assert_eq!(bare.estimates, journaled.estimates);
    assert_eq!(bare.trials, journaled.trials);
    assert_eq!(bare.trace, journaled.trace);
    assert!(journaled.quarantines.is_empty() && !journaled.truncated);
    assert!(!ctl.health().flagged());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_any_round_is_bit_identical_at_any_thread_count() {
    // Crash after round k, resume, compare: estimates, trial counts, and
    // the *final journal bytes* must all match the uninterrupted run —
    // at HB_THREADS-style worker counts 1 and 4, swept across seeds
    // (`HB_TEST_SEED` shifts the whole family in CI).
    let c = cfg(4, 128, 1e-9); // unreachable target: runs to the cap
    for seed_salt in [5u64, 91] {
        let master = test_seed(20110815 ^ seed_salt);
        for workers in [1usize, 4] {
            let (reference, _, ref_journal) = run_and_capture(workers, &c, master, 4);
            for boundary in [4u64, 8, 32, 64] {
                let (_, crashed, _) = run_and_capture(workers, &c, master, boundary);
                // Sanity: the captured journal really is the round-k one.
                let j = Journal::decode(&crashed).expect("captured journal decodes");
                assert_eq!(j.done, boundary, "capture point");
                for resume_workers in [1usize, 4] {
                    let (resumed, resumed_journal) = resume_from(
                        resume_workers,
                        &c,
                        master,
                        &crashed,
                        &format!("res_{workers}_{resume_workers}_{boundary}_{seed_salt}"),
                    );
                    assert_eq!(
                        resumed.estimates, reference.estimates,
                        "estimates after resume at boundary {boundary}"
                    );
                    assert_eq!(resumed.trials, reference.trials);
                    assert_eq!(
                        resumed_journal, ref_journal,
                        "final journal bytes after resume at boundary {boundary}"
                    );
                }
            }
        }
    }
}

#[test]
fn resume_of_a_converged_run_stops_immediately() {
    // A run that crashed *after* its convergence round but before the
    // driver consumed the result: resume re-evaluates the stopping rule
    // from the journal and returns without running any more trials.
    let c = cfg(4, 4096, 0.02);
    let master = test_seed(23);
    let dir = tmp_dir("conv");
    let ctl = RunCtl::new(Some(dir.clone()), false, None);
    let full = adaptive_proportions_ctl(1, &c, master, Some(&ctl), |s| [coin_trial(s)]);
    let jpath = journal_path(&dir, master, 1, "p");
    let final_journal = std::fs::read(&jpath).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let trial_ran = Mutex::new(0u64);
    let dir2 = tmp_dir("conv_resume");
    std::fs::create_dir_all(&dir2).unwrap();
    std::fs::write(journal_path(&dir2, master, 1, "p"), &final_journal).unwrap();
    let ctl2 = RunCtl::new(Some(dir2.clone()), true, None);
    let resumed = adaptive_proportions_ctl(1, &c, master, Some(&ctl2), |s| {
        *trial_ran.lock().unwrap() += 1;
        [coin_trial(s)]
    });
    assert_eq!(*trial_ran.lock().unwrap(), 0, "no trials re-run");
    assert_eq!(resumed.estimates, full.estimates);
    assert_eq!(resumed.trials, full.trials);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn corrupt_journals_restart_from_scratch_never_resume_wrong() {
    let c = cfg(4, 64, 1e-9);
    let master = test_seed(7);
    let (reference, crashed, ref_journal) = run_and_capture(1, &c, master, 8);

    // Truncations and bit flips all fail the integrity check and fall
    // back to a clean from-scratch run — which, by determinism, lands on
    // the reference result and rewrites a pristine journal.
    let mut corruptions: Vec<Vec<u8>> = Vec::new();
    for cut in [0usize, 10, crashed.len() / 2, crashed.len() - 1] {
        corruptions.push(crashed[..cut].to_vec());
    }
    for pos in [12usize, crashed.len() / 2, crashed.len() - 2] {
        let mut bad = crashed.clone();
        bad[pos] ^= 0x40;
        corruptions.push(bad);
    }
    corruptions.push(b"not a journal at all".to_vec());
    for (i, bad) in corruptions.iter().enumerate() {
        assert_eq!(Journal::decode(bad), None, "corruption {i} must not decode");
        let (resumed, resumed_journal) = resume_from(1, &c, master, bad, &format!("corrupt_{i}"));
        assert_eq!(resumed.estimates, reference.estimates, "corruption {i}");
        assert_eq!(resumed.trials, reference.trials, "corruption {i}");
        assert_eq!(resumed_journal, ref_journal, "corruption {i}");
    }

    // Control experiment: a *checksum-valid* journal with tampered counts
    // IS resumed (that's the engine trusting integrity-checked state) and
    // yields different estimates — demonstrating the corruption cases
    // above really did restart from scratch rather than resume garbage.
    let mut tampered = Journal::decode(&crashed).unwrap();
    if let JournalKind::Proportions(pools) = &mut tampered.kind {
        pools[0].0 = 0; // claim zero successes so far
    }
    let (wrong, _) = resume_from(1, &c, master, &tampered.encode(), "tampered");
    assert_eq!(wrong.trials, reference.trials, "schedule still followed");
    assert_ne!(
        wrong.estimates[0], reference.estimates[0],
        "a decodable journal is trusted — only the checksum stands between \
         corruption and a wrong resume"
    );
}

#[test]
fn mismatched_master_or_config_restarts_from_scratch() {
    let c = cfg(4, 64, 1e-9);
    let master = test_seed(41);
    let (reference, crashed, _) = run_and_capture(1, &c, master, 8);

    // Same bytes, resumed under a different master seed: the journal's
    // master field does not match, so the run restarts (and, being a
    // different seed, must not inherit the old counts).
    let other_master = master ^ 0xFFFF;
    let dir = tmp_dir("wrong_master");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(journal_path(&dir, other_master, 1, "p"), &crashed).unwrap();
    let ctl = RunCtl::new(Some(dir.clone()), true, None);
    let resumed = adaptive_proportions_ctl(1, &c, other_master, Some(&ctl), |s| [coin_trial(s)]);
    let fresh = adaptive_proportions_ctl(1, &c, other_master, None, |s| [coin_trial(s)]);
    assert_eq!(resumed.estimates, fresh.estimates);
    let _ = std::fs::remove_dir_all(&dir);

    // Same journal under a different sizing config: the fingerprint
    // rejects it. A shorter cap makes the rejection observable — a
    // (wrong) resume from done=8 would only execute 24 more trials,
    // while the clean restart the engine actually performs runs all 32.
    let shorter = cfg(4, 32, 1e-9);
    let resumed = {
        let dir = tmp_dir("wrong_cfg");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = journal_path(&dir, master, 1, "p");
        std::fs::write(&jpath, &crashed).unwrap();
        let ctl = RunCtl::new(Some(dir.clone()), true, None);
        let run = adaptive_proportions_ctl(1, &shorter, master, Some(&ctl), |s| [coin_trial(s)]);
        let _ = std::fs::remove_dir_all(&dir);
        run
    };
    let fresh = adaptive_proportions_ctl(1, &shorter, master, None, |s| [coin_trial(s)]);
    assert_eq!(resumed.estimates, fresh.estimates);
    assert_eq!(resumed.trials, 32, "clean restart re-ran every trial");
    assert_ne!(
        fresh.estimates[0], reference.estimates[0],
        "the two configs genuinely differ, so the rejection mattered"
    );
}

#[test]
fn quarantined_trials_degrade_gracefully_and_survive_resume() {
    let c = cfg(4, 64, 1e-9);
    let master = test_seed(3);
    let poison = trial_seed(master, 5); // trial index 5 panics
    let trial = |s: u64| {
        if s == poison {
            panic!("synthetic trial failure for seed {s:#x}");
        }
        [coin_trial(s)]
    };

    // The run completes, the panic is quarantined with replay metadata,
    // and the surviving trials' counts are unaffected (index 5 consumes
    // its seed but contributes nothing).
    let dir = tmp_dir("quar");
    let ctl = RunCtl::new(Some(dir.clone()), false, None);
    let run = adaptive_proportions_ctl(1, &c, master, Some(&ctl), trial);
    assert_eq!(run.trials, 64);
    assert_eq!(run.quarantines.len(), 1);
    let q = &run.quarantines[0];
    assert_eq!((q.index, q.seed), (5, poison));
    assert!(
        q.message.contains("synthetic trial failure"),
        "{}",
        q.message
    );
    assert_eq!(ctl.health().quarantined, 1);
    assert!(ctl.health().degraded() && !ctl.health().truncated);
    // 63 surviving trials × 16 bits each.
    assert_eq!(run.estimates[0].n, 63 * 16);
    // The healthy trials' pooled counts are exactly the healthy run minus
    // trial 5's contribution — the seed stream was not perturbed.
    let healthy = adaptive_proportions_ctl(1, &c, master, None, |s| [coin_trial(s)]);
    let (h5, _) = coin_trial(poison);
    let healthy_successes = (healthy.estimates[0].mean * healthy.estimates[0].n as f64).round();
    let degraded_successes = (run.estimates[0].mean * run.estimates[0].n as f64).round();
    assert_eq!(degraded_successes, healthy_successes - h5 as f64);

    // The quarantine record survives in the journal and a resumed run
    // still reports the run as degraded.
    let jpath = journal_path(&dir, master, 1, "p");
    let journal = Journal::load(&jpath).expect("journal decodes");
    assert_eq!(journal.quarantines, run.quarantines);
    let crashed = {
        // Take the round-2 journal (done=8) to resume through the
        // quarantined round's aftermath.
        let j = Journal {
            done: 8,
            kind: JournalKind::Proportions(vec![{
                let mut pool = (0u64, 0u64);
                for i in 0..8u64 {
                    if i == 5 {
                        continue;
                    }
                    let (s, t) = coin_trial(trial_seed(master, i));
                    pool.0 += s;
                    pool.1 += t;
                }
                pool
            }]),
            ..journal.clone()
        };
        j.encode()
    };
    let dir2 = tmp_dir("quar_resume");
    std::fs::create_dir_all(&dir2).unwrap();
    std::fs::write(journal_path(&dir2, master, 1, "p"), &crashed).unwrap();
    let ctl2 = RunCtl::new(Some(dir2.clone()), true, None);
    let resumed = adaptive_proportions_ctl(1, &c, master, Some(&ctl2), trial);
    assert_eq!(resumed.estimates, run.estimates);
    assert_eq!(resumed.quarantines, run.quarantines);
    assert!(ctl2.health().degraded());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn expired_deadline_truncates_at_a_checkpoint() {
    let c = cfg(4, 1 << 20, 1e-9); // would run ~a million trials
    let master = test_seed(13);
    let past = std::time::Instant::now() - std::time::Duration::from_secs(1);
    let ctl = RunCtl::new(None, false, Some(past));
    let run = adaptive_proportions_ctl(1, &c, master, Some(&ctl), |s| [coin_trial(s)]);
    assert!(run.truncated);
    assert_eq!(run.trials, 0, "stopped before the first round");
    assert!(ctl.health().truncated);

    // A generous deadline changes nothing relative to no deadline.
    let modest = cfg(4, 64, 1e-9);
    let future = std::time::Instant::now() + std::time::Duration::from_secs(3600);
    let ctl = RunCtl::new(None, false, Some(future));
    let timed = adaptive_proportions_ctl(1, &modest, master, Some(&ctl), |s| [coin_trial(s)]);
    let bare = adaptive_proportions_ctl(1, &modest, master, None, |s| [coin_trial(s)]);
    assert_eq!(timed.estimates, bare.estimates);
    assert!(!timed.truncated && !ctl.health().flagged());
}

#[test]
fn adaptive_mean_resumes_bit_identically() {
    let c = cfg(8, 64, 1e-9);
    let master = test_seed(29);
    let noisy = |s: u64| (trial_seed(s, 0) >> 11) as f64 / (1u64 << 53) as f64;

    let dir = tmp_dir("mean");
    let ctl = RunCtl::new(Some(dir.clone()), false, None);
    let jpath = journal_path(&dir, master, 1, "m");
    let captured: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let capture_seed = trial_seed(master, 16); // first trial of round 3
    let reference: Estimate = adaptive_mean_ctl(1, &c, master, Some(&ctl), |s| {
        if s == capture_seed {
            *captured.lock().unwrap() = std::fs::read(&jpath).ok();
        }
        noisy(s)
    });
    let crashed = captured.lock().unwrap().take().expect("captured");
    let ref_journal = std::fs::read(&jpath).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(Journal::decode(&crashed).unwrap().done, 16);

    for workers in [1usize, 4] {
        let dir2 = tmp_dir(&format!("mean_resume_{workers}"));
        std::fs::create_dir_all(&dir2).unwrap();
        let jpath2 = journal_path(&dir2, master, 1, "m");
        std::fs::write(&jpath2, &crashed).unwrap();
        let ctl2 = RunCtl::new(Some(dir2.clone()), true, None);
        let resumed = adaptive_mean_ctl(workers, &c, master, Some(&ctl2), noisy);
        assert_eq!(resumed, reference, "resumed mean at {workers} workers");
        assert_eq!(std::fs::read(&jpath2).unwrap(), ref_journal);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    // Corrupt mean journals restart cleanly too.
    let mut bad = crashed.clone();
    let len = bad.len();
    bad[len - 3] ^= 0x08;
    let dir3 = tmp_dir("mean_corrupt");
    std::fs::create_dir_all(&dir3).unwrap();
    std::fs::write(journal_path(&dir3, master, 1, "m"), &bad).unwrap();
    let ctl3 = RunCtl::new(Some(dir3.clone()), true, None);
    let resumed = adaptive_mean_ctl(1, &c, master, Some(&ctl3), noisy);
    assert_eq!(resumed, reference);
    let _ = std::fs::remove_dir_all(&dir3);
}

proptest! {
    /// Property form of the tentpole claim: for arbitrary sizing, master
    /// seed, crash round, and worker counts, crash-after-round-k + resume
    /// is bit-identical — estimates and final journal bytes — to the
    /// uninterrupted run.
    #[test]
    fn prop_resume_is_bit_identical(
        master in any::<u64>(),
        initial in 2usize..9,
        rounds in 3u32..7,
        crash_round in 1u32..3,
        workers_sel in 0usize..2,
        resume_workers_sel in 0usize..2,
    ) {
        let workers = [1usize, 4][workers_sel];
        let resume_workers = [1usize, 4][resume_workers_sel];
        let max = initial << rounds; // cap at a natural doubling boundary
        let c = cfg(initial, max, 1e-9);
        let boundary = (initial << crash_round) as u64;
        let (reference, crashed, ref_journal) =
            run_and_capture(workers, &c, master, boundary);
        let (resumed, resumed_journal) = resume_from(
            resume_workers,
            &c,
            master,
            &crashed,
            &format!("prop_{master:016x}_{initial}_{rounds}_{crash_round}_{workers}_{resume_workers}"),
        );
        prop_assert_eq!(resumed.estimates, reference.estimates);
        prop_assert_eq!(resumed.trials, reference.trials);
        prop_assert_eq!(resumed_journal, ref_journal);
    }
}
