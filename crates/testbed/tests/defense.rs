//! Cross-defense conformance suite: every [`Defense`] in the matrix is
//! held to the same contract, with each security assertion made exactly
//! where the defense claims it ([`DefenseClaims`]) and nowhere else.
//!
//! * **Determinism** — a defended exchange is bit-for-bit reproducible
//!   (transmit log, stats, battery energy), and pooled Monte-Carlo
//!   estimates over defended trials are identical at 1 and 4 workers.
//! * **Authentication** — for every defense claiming
//!   `authenticates_commands`, the forged-command success interval over
//!   ~80 fresh scenarios excludes everything above 0.05.
//! * **Drain gating** — for every defense claiming `gates_battery_drain`,
//!   a 16-command drain burst leaves the implant's radio energy bounded
//!   (bounds sized from the `calibrate_defense_*` truth printers across
//!   seeds, not one lucky stream).
//! * **Legacy equivalence** — [`ShieldDefense`] behind the trait is
//!   *bitwise* identical to the legacy `relay_one_exchange` engine
//!   (proptest over seeds and eavesdropper positions), which is why the
//!   golden suite needs no re-capture.

use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_channel::sim::Node;
use hb_imd::commands::Command;
use hb_imd::therapy::TherapyParams;
use hb_testbed::defense::{run_defended_exchange, Defense, DefenseStats, ShieldDefense, DEFENSES};
use hb_testbed::experiments::relay_one_exchange;
use hb_testbed::montecarlo::{self, McConfig};
use hb_testbed::scenario::{ImdModel, Scenario, ScenarioBuilder, ScenarioConfig};
use proptest::prelude::*;

/// The statistical tests honor `HB_TEST_SEED` (CI sweeps it).
fn test_seed(default: u64) -> u64 {
    std::env::var("HB_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Paper config with the usual model alternation and the defense's edits.
fn defended_config(defense: &dyn Defense, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        ImdModel::VirtuosoIcd
    } else {
        ImdModel::ConcertoCrt
    };
    defense.configure(&mut cfg);
    cfg
}

/// Everything observable about one defended exchange, in comparable form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    tx: Vec<(u64, Vec<u8>, Vec<u8>)>,
    stats: (u64, u64, u64, u64, u64, u64),
    defense: DefenseStats,
    energy_bits: u64,
    end_tick: u64,
    delivered: bool,
}

/// Runs one clean defended `Interrogate` exchange and fingerprints it.
fn exchange_fingerprint(defense: &dyn Defense, seed: u64) -> Fingerprint {
    let cfg = defended_config(defense, seed);
    let mut builder = ScenarioBuilder::new(cfg);
    let mut rig = defense.install(&mut builder);
    let mut scenario = builder.build();
    let report = run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [],
        Command::Interrogate,
        0.120,
    );
    fingerprint_of(&mut scenario, report.delivered, report.stats)
}

fn fingerprint_of(scenario: &mut Scenario, delivered: bool, defense: DefenseStats) -> Fingerprint {
    let tx = scenario
        .imd
        .take_tx_log()
        .into_iter()
        .map(|r| (r.start_tick, r.bits, r.payload))
        .collect();
    let s = &scenario.imd.stats;
    Fingerprint {
        tx,
        stats: (
            s.commands_executed,
            s.responses_sent,
            s.therapy_changes,
            s.auth_rejects,
            s.wake_tokens_accepted,
            s.wake_dropped,
        ),
        defense,
        energy_bits: scenario.imd.battery().radio_energy_j().to_bits(),
        end_tick: scenario.medium.tick(),
        delivered,
    }
}

/// One forged-therapy attempt against a defended exchange: commercial
/// programmer at 20 cm, fired after the legitimate exchange settles
/// (matching the defense-matrix forger row). True iff therapy changed.
fn forge_once(defense: &dyn Defense, seed: u64) -> bool {
    let cfg = defended_config(defense, seed);
    let mut builder = ScenarioBuilder::new(cfg);
    let mut rig = defense.install(&mut builder);
    let atk_ant = builder.add_at(
        hb_testbed::layout::Fig6Layout::paper()
            .location(1)
            .placement("attacker"),
    );
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    let block_len = scenario.medium.config().block_len as u64;
    let start = scenario.medium.tick() + scenario.medium.blocks_for_duration(0.110) * block_len;
    let mut p = TherapyParams::nominal();
    p.rate_ppm = 150;
    attacker.send_forged_command(start, channel, serial, Command::SetTherapy(p));
    run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut attacker as &mut dyn Node],
        Command::Interrogate,
        0.180,
    );
    scenario.imd.stats.therapy_changes > 0
}

/// One 16-command drain burst against a defended exchange (matching the
/// defense-matrix drain row). Returns the implant's radio energy in mJ.
fn drain_energy_mj(defense: &dyn Defense, seed: u64) -> f64 {
    let cfg = defended_config(defense, seed);
    let mut builder = ScenarioBuilder::new(cfg);
    let mut rig = defense.install(&mut builder);
    let atk_ant = builder.add_at(
        hb_testbed::layout::Fig6Layout::paper()
            .location(1)
            .placement("drainer"),
    );
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    let block_len = scenario.medium.config().block_len as u64;
    let spacing = scenario.medium.blocks_for_duration(0.060) * block_len;
    let start = scenario.medium.tick() + scenario.medium.blocks_for_duration(0.110) * block_len;
    for i in 0..16 {
        attacker.send_forged_command(start + i * spacing, channel, serial, Command::Interrogate);
    }
    run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut attacker as &mut dyn Node],
        Command::Interrogate,
        0.110 + 16.0 * 0.060 + 0.080,
    );
    scenario.imd.battery().radio_energy_j() * 1e3
}

#[test]
fn every_defense_delivers_a_clean_exchange() {
    for defense in DEFENSES {
        for s in 0..3u64 {
            let fp = exchange_fingerprint(defense, test_seed(41) ^ s);
            assert!(
                fp.delivered,
                "{} must deliver on a clean channel (seed offset {s})",
                defense.name()
            );
        }
    }
}

#[test]
fn defended_exchanges_are_bit_for_bit_reproducible() {
    for defense in DEFENSES {
        let seed = test_seed(43);
        let a = exchange_fingerprint(defense, seed);
        let b = exchange_fingerprint(defense, seed);
        assert_eq!(a, b, "{} exchange must be deterministic", defense.name());
    }
}

#[test]
fn pooled_estimates_match_across_worker_counts() {
    // The defense-matrix cells ride the adaptive engine; its 1-worker and
    // 4-worker pooled counts over defended trials must agree exactly.
    let seed = test_seed(47);
    for defense in DEFENSES {
        let mc = McConfig {
            initial_trials: 8,
            max_trials: 8,
            target_half_width: 0.01,
            z: hb_dsp::stats::Z_95,
            bootstrap_resamples: 50,
        };
        let one = montecarlo::adaptive_proportion_with(1, &mc, seed, |s| {
            (forge_once(defense, s) as u64, 1)
        });
        let four = montecarlo::adaptive_proportion_with(4, &mc, seed, |s| {
            (forge_once(defense, s) as u64, 1)
        });
        assert_eq!(
            one,
            four,
            "{}: pooled estimate must not depend on worker count",
            defense.name()
        );
    }
}

#[test]
fn auth_claiming_defenses_bound_forged_success_below_5_percent() {
    // Wilson 95% upper bound at 0 successes needs ~80 trials to drop
    // under 0.05 — never assert a rate bound the sample cannot support.
    let seed = test_seed(53);
    for defense in DEFENSES {
        if !defense.claims().authenticates_commands {
            continue;
        }
        let mc = McConfig {
            initial_trials: 80,
            max_trials: 80,
            target_half_width: 0.01,
            z: hb_dsp::stats::Z_95,
            bootstrap_resamples: 50,
        };
        let est =
            montecarlo::adaptive_proportion_with(hb_testbed::parallel_threads(), &mc, seed, |s| {
                (forge_once(defense, s) as u64, 1)
            });
        assert!(
            est.below(0.05),
            "{} claims command authentication; forged success {est:?} must exclude 0.05",
            defense.name()
        );
    }
}

#[test]
fn drain_gating_defenses_bound_the_energy_bill() {
    // Truth from calibrate_defense_drain_energy across seeds: shield
    // ~0.48 mJ (the burst is starved), wake-up ~1.93 mJ (a few in-window
    // replies, then the gate closes), IMDfence ~8.17 mJ (a Nak per
    // refusal — it does NOT claim drain gating). Bounds sit 50%+ above
    // the observed ceiling but far below the non-gating defense.
    let seed = test_seed(59);
    let ungated: f64 = DEFENSES
        .iter()
        .filter(|d| !d.claims().gates_battery_drain)
        .map(|d| drain_energy_mj(*d, seed))
        .fold(f64::INFINITY, f64::min);
    for defense in DEFENSES {
        if !defense.claims().gates_battery_drain {
            continue;
        }
        for s in 0..3u64 {
            let mj = drain_energy_mj(defense, seed ^ s);
            assert!(
                mj < 3.0,
                "{} claims drain gating; 16-command burst cost {mj:.3} mJ",
                defense.name()
            );
            assert!(
                mj < ungated / 2.0,
                "{} ({mj:.3} mJ) must spend well under the cheapest \
                 non-gating defense ({ungated:.3} mJ)",
                defense.name()
            );
        }
    }
}

/// Drives the LEGACY path: identical scenario construction, then
/// `relay_one_exchange` twice over 0.060 s windows — the exact engine the
/// golden suite pins.
fn legacy_fingerprint(seed: u64, eve_location: usize) -> Fingerprint {
    let cfg = defended_config(&ShieldDefense, seed);
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(eve_location, "eve");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
    relay_one_exchange(
        &mut scenario,
        &mut [&mut eve as &mut dyn Node],
        Command::Interrogate,
    );
    let delivered = !scenario
        .shield
        .as_mut()
        .expect("shield present")
        .take_responses()
        .is_empty();
    fingerprint_of(&mut scenario, delivered, DefenseStats::default())
}

/// Same exchange through the [`ShieldDefense`] rig.
fn shield_rig_fingerprint(seed: u64, eve_location: usize) -> Fingerprint {
    let cfg = defended_config(&ShieldDefense, seed);
    let mut builder = ScenarioBuilder::new(cfg);
    let mut rig = ShieldDefense.install(&mut builder);
    let eve_ant = builder.add_at_location(eve_location, "eve");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
    let report = run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut eve as &mut dyn Node],
        Command::Interrogate,
        0.060,
    );
    fingerprint_of(&mut scenario, report.delivered, DefenseStats::default())
}

proptest! {
    /// The tentpole's bit-identity contract: ShieldDefense behind the
    /// trait produces the exact transmit log, stats, battery energy, and
    /// medium clock of the legacy engine — for any seed and any
    /// eavesdropper position. This is the proof that no golden artifact
    /// needs re-capture.
    #[test]
    fn shield_defense_is_bitwise_equivalent_to_legacy(
        seed in 0u64..5_000,
        eve_location in 1usize..=18,
    ) {
        let legacy = legacy_fingerprint(seed, eve_location);
        let rig = shield_rig_fingerprint(seed, eve_location);
        prop_assert_eq!(legacy, rig);
    }
}
