//! Golden determinism tests: pin exact experiment outputs for fixed seeds.
//!
//! The values below pin the engine's numerics — the RNG stream, the mixing
//! arithmetic, the modulation oscillator — bit-identically, at any thread
//! count. They are the refactor-safety net the ROADMAP asks for: any
//! unintended numeric change shows up here as a hard failure rather than a
//! silent drift in the statistical experiments.
//!
//! # Re-pin policy
//!
//! Goldens are re-captured **only** for deliberate engine-numeric changes
//! (a new RNG-consumption pattern, a different noise transform, an
//! oscillator swap) — one re-pin per such PR, called out in its
//! description. They are **never** re-pinned to make a statistical
//! experiment meet a paper bound: if a statistical test trips after a
//! legitimate re-pin, grow its sample count and keep the asserted bound
//! unchanged (ROADMAP, "known-flaky area").
//!
//! To re-capture, run
//!
//! ```text
//! HB_BLESS=1 cargo test -p hb_testbed --test golden -- --nocapture
//! ```
//!
//! which prints ready-to-paste `const GOLDEN_…` lines instead of failing;
//! paste them over the constants at the bottom of this file. The current
//! constants were captured on the PR-4 engine (batched paired Box–Muller
//! noise + phase-recurrence oscillators); PR 1–3 pinned the seed engine's
//! per-sample Box–Muller stream.

use hb_adversary::active::AttackerConfig;
use hb_channel::geometry::Placement;
use hb_channel::medium::{Medium, MediumConfig};
use hb_dsp::complex::C64;
use hb_testbed::experiments::fig11::{success_probability, AttackGoal};
use hb_testbed::experiments::{fig8, fig9};

/// Exact-equality helper for the canonical pin of each constant. With
/// `HB_BLESS=1` it prints a ready-to-paste `const` line and skips the
/// assertion (re-capture mode); otherwise any mismatch also prints the
/// measured value, so a one-off diff is easy to inspect. Each `GOLDEN_*`
/// constant must flow through this from exactly one call site, so a bless
/// run emits each line once; secondary cross-checks of the same constant
/// use [`assert_matches_golden`].
fn assert_bits(const_name: &str, measured: f64, expected: f64) {
    if std::env::var_os("HB_BLESS").is_some() {
        println!("const {const_name}: f64 = {measured:?};");
        return;
    }
    println!(
        "golden {const_name}: measured {measured:?} (bits {:#x})",
        measured.to_bits()
    );
    assert!(
        measured.to_bits() == expected.to_bits(),
        "{const_name}: measured {measured:?} != golden {expected:?} \
         (deliberate numerics change? re-capture with HB_BLESS=1, see header)"
    );
}

/// Like [`assert_bits`] but for *secondary* checks that re-pin a constant
/// from another path (e.g. the thread-count-invariance sweep): in bless
/// mode it prints a comment, not a pasteable `const` line, so re-capture
/// output never contains duplicate or syntactically invalid definitions.
fn assert_matches_golden(label: &str, measured: f64, expected: f64) {
    if std::env::var_os("HB_BLESS").is_some() {
        println!("// cross-check {label}: {measured:?}");
        return;
    }
    println!(
        "golden {label}: measured {measured:?} (bits {:#x})",
        measured.to_bits()
    );
    assert!(
        measured.to_bits() == expected.to_bits(),
        "{label}: measured {measured:?} != golden {expected:?} \
         (deliberate numerics change? re-capture with HB_BLESS=1, see header)"
    );
}

#[test]
fn golden_fig8_operating_point() {
    // The paper's +20 dB operating point: adversary guesses, shield decodes.
    let (ber, per) = fig8::run_margin_point(20.0, 6, 7);
    assert_bits("GOLDEN_FIG8_20DB_BER", ber, GOLDEN_FIG8_20DB_BER);
    assert_bits("GOLDEN_FIG8_20DB_PER", per, GOLDEN_FIG8_20DB_PER);
}

#[test]
fn golden_fig8_low_margin() {
    let (ber, per) = fig8::run_margin_point(0.0, 6, 11);
    assert_bits("GOLDEN_FIG8_0DB_BER", ber, GOLDEN_FIG8_0DB_BER);
    assert_bits("GOLDEN_FIG8_0DB_PER", per, GOLDEN_FIG8_0DB_PER);
}

#[test]
fn golden_fig9_locations() {
    let near = fig9::ber_at_location(1, 3, 3);
    let far = fig9::ber_at_location(13, 3, 16);
    assert_bits("GOLDEN_FIG9_LOC1_BER", near, GOLDEN_FIG9_LOC1_BER);
    assert_bits("GOLDEN_FIG9_LOC13_BER", far, GOLDEN_FIG9_LOC13_BER);
}

#[test]
fn golden_fig11_success_counts() {
    // Location 7 is marginal for the FCC-power attacker: fractional success
    // probability, so the exact fraction pins every layer from the channel
    // draw to the IMD state machine.
    let cfg = AttackerConfig::commercial_programmer();
    let absent = success_probability(7, false, &cfg, AttackGoal::ElicitReply, 3, 5);
    let present = success_probability(7, true, &cfg, AttackGoal::ElicitReply, 3, 5);
    assert_bits("GOLDEN_FIG11_LOC7_ABSENT", absent, GOLDEN_FIG11_LOC7_ABSENT);
    assert_bits(
        "GOLDEN_FIG11_LOC7_PRESENT",
        present,
        GOLDEN_FIG11_LOC7_PRESENT,
    );
}

#[test]
fn golden_medium_mixing_checksum() {
    // Engine-level golden: a medium with noise, two staged transmissions,
    // a CFO-rotated link and impulse noise enabled. The accumulated
    // receive checksum pins the RNG stream, the gain table, the CFO
    // rotation and the impulse path bit-for-bit.
    let mut m = Medium::new(MediumConfig::default(), 0xC0FFEE);
    let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
    let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
    let c = m.add_antenna(Placement::los("c", 2.0, 0.0));
    m.set_gain(a, c, C64::new(0.5, -0.25));
    m.set_gain(b, c, C64::new(0.125, 0.5));
    m.set_gain(a, b, C64::new(0.0, 1.0));
    m.set_cfo_hz(a, 1500.0);
    m.set_noise_floor_dbm(c, -80.0);
    m.set_impulse_noise(0.3, -70.0);

    let tone: Vec<C64> = (0..16).map(|i| C64::new(1.0, i as f64 * 0.1)).collect();
    let mut acc = C64::ZERO;
    let mut acc_pow = 0.0;
    for blk in 0..400u64 {
        if blk % 3 != 2 {
            m.transmit(a, 0, &tone);
        }
        if blk % 2 == 0 {
            m.transmit(b, 0, &tone[..7.min(tone.len())]);
        }
        // Repeat receives within the block must be identical (cached).
        let y1: Vec<C64> = m.receive(c, 0);
        let y2: Vec<C64> = m.receive(c, 0);
        assert_eq!(y1, y2, "cache must be idempotent within a block");
        let yb: Vec<C64> = m.receive(b, 0);
        for (s, t) in y1.iter().zip(yb.iter()) {
            acc += *s + *t;
            acc_pow += s.norm_sq() + t.norm_sq();
        }
        m.end_block();
    }
    assert_bits("GOLDEN_MEDIUM_ACC_RE", acc.re, GOLDEN_MEDIUM_ACC_RE);
    assert_bits("GOLDEN_MEDIUM_ACC_IM", acc.im, GOLDEN_MEDIUM_ACC_IM);
    assert_bits("GOLDEN_MEDIUM_ACC_POW", acc_pow, GOLDEN_MEDIUM_ACC_POW);
}

#[test]
fn golden_sweep_is_thread_count_invariant() {
    // The same location sweep, executed strictly sequentially and on four
    // worker threads, must produce bit-identical results: determinism is
    // carried by the pre-derived per-task seeds, not by scheduling. The
    // sequential arm also re-pins two of the hardcoded goldens above.
    let locations = [1usize, 7, 13, 18];
    let task = |loc: usize| {
        let seed = if loc == 1 { 3 } else { 16 };
        fig9::ber_at_location(loc, 3, seed)
    };
    let sequential = hb_testbed::parallel::parallel_map_with(1, &locations, |_, &l| task(l));
    let threaded = hb_testbed::parallel::parallel_map_with(4, &locations, |_, &l| task(l));
    for (i, (s, t)) in sequential.iter().zip(threaded.iter()).enumerate() {
        assert!(
            s.to_bits() == t.to_bits(),
            "location {}: sequential {s:?} != threaded {t:?}",
            locations[i]
        );
    }
    assert_matches_golden(
        "GOLDEN_FIG9_LOC1_BER (sweep, 1 thread)",
        sequential[0],
        GOLDEN_FIG9_LOC1_BER,
    );
    assert_matches_golden(
        "GOLDEN_FIG9_LOC13_BER (sweep, 4 threads)",
        threaded[2],
        GOLDEN_FIG9_LOC13_BER,
    );
}

// --- Golden values, captured with HB_BLESS=1 on the PR-4 engine ---
// (batched paired Box–Muller NoiseSource + phase-recurrence oscillators;
// previous constants pinned the seed engine's per-sample Box–Muller.)

const GOLDEN_FIG8_20DB_BER: f64 = 0.525;
const GOLDEN_FIG8_20DB_PER: f64 = 0.0;
const GOLDEN_FIG8_0DB_BER: f64 = 0.39416666666666667;
const GOLDEN_FIG8_0DB_PER: f64 = 0.0;
const GOLDEN_FIG9_LOC1_BER: f64 = 0.495;
const GOLDEN_FIG9_LOC13_BER: f64 = 0.4683333333333333;
const GOLDEN_FIG11_LOC7_ABSENT: f64 = 1.0;
const GOLDEN_FIG11_LOC7_PRESENT: f64 = 0.0;
const GOLDEN_MEDIUM_ACC_RE: f64 = -36.98071628594399;
const GOLDEN_MEDIUM_ACC_IM: f64 = 758.3916918838473;
const GOLDEN_MEDIUM_ACC_POW: f64 = 10372.866069730535;
