//! Registry coverage: the experiment registry is the single source of
//! truth for every driver (`full_evaluation`, `hb_eval`, CI), so these
//! tests pin its invariants — every experiment module registered exactly
//! once, stable kebab-case names, and a working `run` for each entry.

use hb_testbed::experiments::registry::{self, EvalCtx};
use hb_testbed::experiments::Effort;

/// Every module's expected registry name; one entry per experiment
/// module (the five ablations are distinct experiments of one module).
const EXPECTED: &[&str] = &[
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table1",
    "table2",
    "ablation-jam-shape",
    "ablation-cancellation",
    "ablation-turnaround",
    "ablation-wearability",
    "ablation-rf",
    "battery",
    "ward-multi-imd",
    "ward-hospital-floor",
    "mobile-adversary",
    "crosstraffic",
    "resilience-matrix",
    "defense-matrix",
];

fn is_kebab_case(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with('-')
        && !s.ends_with('-')
        && !s.contains("--")
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

#[test]
fn every_module_registered_exactly_once() {
    let names: Vec<&str> = registry::registry().iter().map(|e| e.name()).collect();
    for expected in EXPECTED {
        assert_eq!(
            names.iter().filter(|n| *n == expected).count(),
            1,
            "experiment '{expected}' must be registered exactly once"
        );
    }
    assert_eq!(
        names.len(),
        EXPECTED.len(),
        "unexpected registry entries: {names:?}"
    );
    assert!(
        names.len() >= 24,
        "the registry must keep all ported, ablation, and extension experiments"
    );
}

#[test]
fn names_are_unique_kebab_case_and_resolvable() {
    let mut seen = std::collections::BTreeSet::new();
    for e in registry::registry() {
        assert!(
            is_kebab_case(e.name()),
            "name '{}' is not kebab-case",
            e.name()
        );
        assert!(seen.insert(e.name()), "duplicate name '{}'", e.name());
        assert!(
            !e.reproduces().is_empty(),
            "'{}' needs a reproduces() description",
            e.name()
        );
        assert_eq!(
            registry::find(e.name()).map(|f| f.name()),
            Some(e.name()),
            "find() must resolve '{}'",
            e.name()
        );
    }
}

#[test]
fn default_efforts_are_sane() {
    for e in registry::registry() {
        let eff = e.default_effort();
        assert!(
            eff == Effort::quick() || eff == Effort::full() || eff == Effort::tiny(),
            "'{}' default_effort must be a named preset",
            e.name()
        );
    }
}

/// Every registry entry runs end to end at tiny effort and produces a
/// non-empty artifact (id, at least one series, at least one point).
/// This is the pipeline pin for `hb_eval --all`: a silently-broken
/// experiment fails here before it ships an empty artifact.
#[test]
fn every_entry_runs_at_tiny_effort() {
    let ctx = EvalCtx::new(Effort::tiny(), 424242);
    for e in registry::registry() {
        let (artifact, stem) = registry::run_one(*e, &ctx);
        assert!(
            !artifact.id.is_empty() && !artifact.caption.is_empty(),
            "'{}' artifact must carry an id and caption",
            e.name()
        );
        assert!(
            !artifact.series.is_empty(),
            "'{}' artifact must have at least one series",
            e.name()
        );
        assert!(
            artifact.series.iter().any(|s| !s.points.is_empty()),
            "'{}' artifact must have data points",
            e.name()
        );
        assert!(
            !stem.is_empty() && !stem.contains(' ') && !stem.contains(':'),
            "'{}' file stem '{stem}' must be path-safe",
            e.name()
        );
        // The machine-readable export of a real run stays parseable-ish:
        // no NaN/Inf leak past the null mapping.
        let json = artifact.to_json();
        assert!(
            !json.contains("NaN") && !json.contains("inf"),
            "'{}' JSON must map non-finite values to null",
            e.name()
        );
    }
}
