//! The active-adversary scenarios of §10.3: forged/replayed commands at
//! FCC power and at 100× power, with and without the shield, plus the
//! frequency-hopping evasion attempt of §7(c).
//!
//! Run with: `cargo run --release --example active_attack`

use heartbeats::adversary::active::{ActiveAttacker, AttackerConfig};
use heartbeats::channel::sim::Node;
use heartbeats::imd::commands::Command;
use heartbeats::imd::therapy::TherapyParams;
use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};

fn attack(label: &str, location: usize, shield_on: bool, attacker_cfg: AttackerConfig, seed: u64) {
    let cfg = if shield_on {
        ScenarioConfig::paper(seed)
    } else {
        ScenarioConfig::paper_no_shield(seed)
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let atk_ant = builder.add_at_location(location, "attacker");
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(attacker_cfg, atk_ant);

    // Try to slow the patient's pacing to a dangerous-but-valid setting.
    let mut params = TherapyParams::nominal();
    params.rate_ppm = 150;
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    attacker.send_forged_command(64, channel, serial, Command::SetTherapy(params));
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.09);

    let changed = scenario.imd.stats.therapy_changes > 0;
    let (alarm, jammed) = scenario
        .shield
        .as_ref()
        .map(|s| (s.stats.alarms > 0, s.stats.active_jam_events > 0))
        .unwrap_or((false, false));
    println!(
        "{label:<46} therapy changed: {}{}{}",
        if changed { "YES" } else { "no " },
        if jammed { "  [shield jammed it]" } else { "" },
        if alarm { "  [ALARM raised]" } else { "" },
    );
}

fn hopping_attack(seed: u64) {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(seed));
    let atk_ant = builder.add_at_location(1, "hopper");
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);

    // Send the same forged command across several MICS channels in
    // sequence; the shield's wideband monitor must catch every one (§7(c)).
    let serial = scenario.imd.config().serial;
    attacker.send_hopping(64, &[0, 3, 7, 9], 3000, serial, Command::Interrogate);
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.15);

    let shield = scenario.shield.as_ref().unwrap();
    println!(
        "frequency-hopping attack over channels 0,3,7,9:  detections {}, jam engagements {}, \
         IMD replies {}",
        shield.stats.sid_detections,
        shield.stats.active_jam_events,
        scenario.imd.stats.responses_sent,
    );
}

fn main() {
    println!("== active attacks against the IMD ==\n");
    println!("-- commercial programmer power (FCC limit), therapy modification --");
    attack(
        "20 cm, shield absent:",
        1,
        false,
        AttackerConfig::commercial_programmer(),
        1,
    );
    attack(
        "20 cm, shield present:",
        1,
        true,
        AttackerConfig::commercial_programmer(),
        2,
    );
    attack(
        "14 m LOS (location 8), shield absent:",
        8,
        false,
        AttackerConfig::commercial_programmer(),
        3,
    );
    attack(
        "30 m NLOS (location 18), shield absent:",
        18,
        false,
        AttackerConfig::commercial_programmer(),
        4,
    );

    println!("\n-- custom hardware at 100x power --");
    attack(
        "20 cm, shield absent:",
        1,
        false,
        AttackerConfig::high_power_custom(),
        5,
    );
    attack(
        "20 cm, shield present:",
        1,
        true,
        AttackerConfig::high_power_custom(),
        6,
    );
    attack(
        "13 m LOS (location 7), shield present:",
        7,
        true,
        AttackerConfig::high_power_custom(),
        7,
    );
    attack(
        "27 m LOS (location 13), shield absent:",
        13,
        false,
        AttackerConfig::high_power_custom(),
        8,
    );

    println!("\n-- evasion: frequency hopping across the MICS band --");
    hopping_attack(9);

    println!("\nSummary: the shield blocks FCC-power attacks everywhere; 100x attacks");
    println!("succeed only up close — and always with the patient alarm ringing.");
}
