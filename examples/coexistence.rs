//! Coexistence with the band's primary users (§11): the shield must not
//! jam meteorological radiosonde traffic sharing the MICS band, while
//! still jamming every packet addressed to its IMD from the same spot.
//!
//! Run with: `cargo run --release --example coexistence`

use heartbeats::adversary::active::{ActiveAttacker, AttackerConfig};
use heartbeats::channel::sim::Node;
use heartbeats::imd::commands::Command;
use heartbeats::shield::shield::ShieldEventKind;
use heartbeats::testbed::crosstraffic::CrossTrafficNode;
use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};

fn main() {
    println!("== coexistence: radiosonde cross-traffic vs IMD-addressed packets ==\n");

    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(33));
    let node_ant = builder.add_at_location(4, "mixed-transmitter");
    let mut scenario = builder.build();
    let channel = scenario.channel();
    let serial = scenario.imd.config().serial;

    // A Vaisala-style GMSK radiosonde packet…
    let mut sonde = CrossTrafficNode::new(node_ant, heartbeats::mics::fcc_eirp_limit_dbm());
    sonde.send_packet(64, channel, 80);
    let sonde_interval = (64, sonde.last_end().unwrap());

    // …followed by an unauthorized IMD command from the same antenna.
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), node_ant);
    let cmd_start = sonde_interval.1 + 3000;
    attacker.send_forged_command(cmd_start, channel, serial, Command::Interrogate);
    let cmd_interval = (cmd_start, attacker.last_tx_end().unwrap());

    scenario.run_seconds(
        &mut [&mut sonde as &mut dyn Node, &mut attacker as &mut dyn Node],
        0.12,
    );

    // Reconstruct the shield's jamming intervals from its event log.
    let shield = scenario.shield.as_ref().unwrap();
    let mut jam_intervals: Vec<(u64, u64)> = Vec::new();
    let mut open: Option<u64> = None;
    for e in &shield.events {
        match e.kind {
            ShieldEventKind::JamStart { .. } => open = open.or(Some(e.tick)),
            ShieldEventKind::JamEnd { .. } => {
                if let Some(s) = open.take() {
                    jam_intervals.push((s, e.tick));
                }
            }
            _ => {}
        }
    }

    let overlaps = |a: (u64, u64), b: (u64, u64)| a.0 < b.1 && b.0 < a.1;
    let sonde_jammed = jam_intervals.iter().any(|&j| overlaps(j, sonde_interval));
    let cmd_jammed = jam_intervals.iter().any(|&j| overlaps(j, cmd_interval));

    println!(
        "radiosonde packet   {:>7}..{:<7} jammed: {}",
        sonde_interval.0,
        sonde_interval.1,
        if sonde_jammed {
            "YES (bug!)"
        } else {
            "no — primary user left alone"
        }
    );
    println!(
        "IMD-addressed cmd   {:>7}..{:<7} jammed: {}",
        cmd_interval.0,
        cmd_interval.1,
        if cmd_jammed {
            "yes — command neutralized"
        } else {
            "NO (bug!)"
        }
    );
    println!(
        "IMD executed {} unauthorized commands",
        scenario.imd.stats.commands_executed
    );
    if let Some(&t) = shield.stats.turnaround_s.first() {
        println!(
            "turn-around after the adversary stopped: {:.0} µs (paper: 270 ± 23 µs, software)",
            t * 1e6
        );
    }
    println!("\nThe shield keys on the IMD's 128-bit identifying sequence, so GMSK");
    println!("telemetry — a different modulation with no Sid — never trips it (§7(a), §11).");
}
