//! The confidentiality scenario of §6/§10.2: a passive eavesdropper 20 cm
//! from the patient tries to read the IMD's telemetry — first without the
//! shield (everything leaks, including the patient's name), then with it
//! (the eavesdropper is reduced to coin-flipping).
//!
//! Run with: `cargo run --release --example eavesdropper`

use heartbeats::adversary::eavesdropper::Eavesdropper;
use heartbeats::channel::sim::Node;
use heartbeats::imd::commands::Command;
use heartbeats::imd::programmer::{Programmer, ProgrammerConfig};
use heartbeats::phy::bits::bits_to_bytes;
use heartbeats::testbed::experiments::relay_one_exchange;
use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};

fn main() {
    println!("== a passive eavesdropper at 20 cm ==\n");
    without_shield();
    with_shield();
}

/// No shield: a bare programmer↔IMD session, overheard.
fn without_shield() {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper_no_shield(11));
    let prog_ant = builder.add_at_location(2, "programmer");
    let eve_ant = builder.add_at_location(1, "eavesdropper");
    let mut scenario = builder.build();
    let channel = scenario.channel();
    let serial = scenario.imd.config().serial;

    let mut prog = Programmer::new(
        ProgrammerConfig {
            channel,
            ..Default::default()
        },
        prog_ant,
    );
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, channel);

    // The clinic reads the patient record over the air.
    let record = heartbeats::imd::telemetry::PatientRecord::demo();
    let mut leaked = Vec::new();
    for chunk in 0..record.chunk_count() {
        prog.send_command_at(
            scenario.medium.tick(),
            serial,
            Command::ReadPatient { chunk },
        );
        scenario.run_seconds(
            &mut [&mut prog as &mut dyn Node, &mut eve as &mut dyn Node],
            0.06,
        );
        // The eavesdropper decodes each reply with perfect timing.
        for rec in scenario.imd.take_tx_log() {
            if let Some(bits) = eve.decode_aligned(rec.start_tick, rec.bits.len()) {
                let whole = bits_to_bytes(&bits[..bits.len() - bits.len() % 8]);
                // Skip the air-frame overhead and the Data response header
                // (opcode + chunk index); drop the trailing CRC.
                if whole.len() > 24 {
                    leaked.extend_from_slice(&whole[23..whole.len() - 2]);
                }
            }
        }
        eve.clear();
    }
    let printable: String = leaked
        .iter()
        .map(|&b| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    println!("shield ABSENT:  eavesdropper reconstructed payload bytes:");
    println!("   {printable}");
    println!("   (the patient's record crossed the air in cleartext)\n");
}

/// With the shield: same telemetry, now jammed on the air.
fn with_shield() {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(11));
    let eve_ant = builder.add_at_location(1, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let record = heartbeats::imd::telemetry::PatientRecord::demo();
    let mut errors = 0usize;
    let mut total = 0usize;
    for chunk in 0..record.chunk_count() {
        relay_one_exchange(
            &mut scenario,
            &mut [&mut eve],
            Command::ReadPatient { chunk },
        );
        for rec in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(rec.start_tick, &rec.bits);
            errors += (ber * rec.bits.len() as f64).round() as usize;
            total += rec.bits.len();
        }
        eve.clear();
    }
    println!(
        "shield PRESENT: eavesdropper BER = {:.3} over {} bits — indistinguishable from guessing",
        errors as f64 / total as f64,
        total
    );
    let shield = scenario.shield.as_ref().unwrap();
    println!(
        "   meanwhile the shield itself decoded {}/{} of the jammed replies",
        shield.stats.imd_frames_ok, scenario.imd.stats.responses_sent
    );
}
