//! Regenerates every table and figure of the paper's evaluation (§10–§11)
//! and writes paper-style reports plus CSV data under `results/`.
//!
//! Run with:
//!   `cargo run --release --example full_evaluation`            (quick)
//!   `cargo run --release --example full_evaluation -- --full`  (paper-scale)

use heartbeats::testbed::experiments::{self, Effort};
use heartbeats::testbed::report::Artifact;
use std::fs;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let effort = if full {
        Effort::full()
    } else {
        Effort::quick()
    };
    let seed = 20110815; // SIGCOMM'11 started August 15, 2011
    fs::create_dir_all("results").expect("create results dir");

    println!(
        "== full evaluation ({} mode) ==\n",
        if full { "full" } else { "quick" }
    );

    let t0 = Instant::now();
    let mut artifacts: Vec<Artifact> = Vec::new();

    macro_rules! run_exp {
        ($name:literal, $art:expr) => {{
            let t = Instant::now();
            let artifact = $art;
            println!("{} done in {:.1}s", $name, t.elapsed().as_secs_f64());
            artifacts.push(artifact);
        }};
    }

    run_exp!("fig3 ", experiments::fig3::run(effort, seed).artifact);
    run_exp!("fig4 ", experiments::fig4::run(effort, seed).artifact);
    run_exp!("fig5 ", experiments::fig5::run(effort, seed).artifact);
    run_exp!("fig7 ", experiments::fig7::run(effort, seed).artifact);
    run_exp!("fig8 ", experiments::fig8::run(effort, seed).artifact);
    run_exp!("fig9 ", experiments::fig9::run(effort, seed).artifact);
    run_exp!("fig10", experiments::fig10::run(effort, seed).artifact);
    run_exp!("fig11", experiments::fig11::run(effort, seed).artifact);
    run_exp!("fig12", experiments::fig12::run(effort, seed).artifact);
    run_exp!("fig13", experiments::fig13::run(effort, seed).artifact);
    run_exp!("tab1 ", experiments::table1::run(effort, seed).artifact);
    run_exp!("tab2 ", experiments::table2::run(effort, seed).artifact);
    run_exp!(
        "abl-shape",
        experiments::ablation::jam_shape(effort, seed).artifact
    );
    run_exp!(
        "abl-G",
        experiments::ablation::cancellation_sweep(effort, seed).artifact
    );
    run_exp!(
        "abl-turnaround",
        experiments::ablation::turnaround(effort, seed).artifact
    );
    run_exp!(
        "abl-wear",
        experiments::ablation::wearability(effort, seed).artifact
    );
    run_exp!(
        "abl-rf",
        experiments::ablation::robustness(effort, seed).artifact
    );
    run_exp!("battery", experiments::battery::run(effort, seed).artifact);

    // Write reports.
    let mut report = String::new();
    for a in &artifacts {
        report.push_str(&a.render());
        report.push('\n');
        let file = format!(
            "results/{}.csv",
            a.id.to_lowercase().replace(' ', "_").replace(':', "")
        );
        fs::write(&file, a.to_csv()).expect("write csv");
    }
    fs::write("results/evaluation.txt", &report).expect("write report");
    println!("\n{report}");
    println!(
        "total {:.1}s; reports in results/evaluation.txt and results/*.csv",
        t0.elapsed().as_secs_f64()
    );
}
