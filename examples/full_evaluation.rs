//! Regenerates every table and figure of the paper's evaluation (§10–§11)
//! plus the extension scenarios, and writes paper-style reports plus CSV
//! and JSON data under `results/`.
//!
//! This is a thin walk over the experiment registry — the list of what
//! runs lives in `hb_testbed::experiments::registry`, not here. For
//! finer-grained control (single experiments, JSON to stdout, thread
//! pinning) use the `hb_eval` binary instead.
//!
//! Run with:
//!   `cargo run --release --example full_evaluation`            (quick)
//!   `cargo run --release --example full_evaluation -- --full`  (paper-scale)

use heartbeats::testbed::checkpoint::atomic_write;
use heartbeats::testbed::experiments::registry::{self, EvalCtx};
use heartbeats::testbed::experiments::Effort;
use heartbeats::testbed::report::Artifact;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let effort = if full {
        Effort::full()
    } else {
        Effort::quick()
    };
    let ctx = EvalCtx::new(effort, registry::DEFAULT_SEED);
    fs::create_dir_all("results").expect("create results dir");

    println!(
        "== full evaluation ({} mode) ==\n",
        if full { "full" } else { "quick" }
    );

    let t0 = Instant::now();
    let mut artifacts: Vec<Artifact> = Vec::new();
    for exp in registry::registry() {
        let t = Instant::now();
        let (artifact, stem) = registry::run_one(*exp, &ctx);
        println!(
            "{:<21} done in {:.1}s",
            exp.name(),
            t.elapsed().as_secs_f64()
        );
        // Atomic writes (.tmp + fsync + rename): a crash mid-run leaves
        // each artifact either complete or absent, never torn.
        atomic_write(
            Path::new(&format!("results/{stem}.csv")),
            artifact.to_csv().as_bytes(),
        )
        .expect("write csv");
        atomic_write(
            Path::new(&format!("results/{stem}.json")),
            artifact.to_json().as_bytes(),
        )
        .expect("write json");
        artifacts.push(artifact);
    }

    let mut report = String::new();
    for a in &artifacts {
        report.push_str(&a.render());
        report.push('\n');
    }
    atomic_write(Path::new("results/evaluation.txt"), report.as_bytes()).expect("write report");
    println!("\n{report}");
    println!(
        "total {:.1}s; reports in results/evaluation.txt, results/*.csv, results/*.json",
        t0.elapsed().as_secs_f64()
    );
}
