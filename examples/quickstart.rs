//! Quickstart: protect an implanted cardiac device with a shield and talk
//! to it through the encrypted relay — the architecture of Fig. 1.
//!
//! ```text
//! programmer ──(ChaCha20-Poly1305)── shield ──(MICS radio + jamming)── IMD
//! ```
//!
//! Run with: `cargo run --release --example quickstart`

use heartbeats::crypto::session::SecureSession;
use heartbeats::imd::commands::{Command, Response};
use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};

fn main() {
    println!("== heartbeats quickstart ==\n");

    // The paper's testbed: a Virtuoso ICD implanted at the origin with a
    // shield worn 25 cm away (two antennas, 2 cm apart).
    let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(2026)).build();
    println!(
        "installed shield: couplings |Hjam→rec/Hself| = {:.1} dB, initial cancellation {:.1} dB",
        scenario
            .shield
            .as_ref()
            .unwrap()
            .config()
            .coupling
            .coupling_ratio_db(),
        scenario
            .shield
            .as_ref()
            .unwrap()
            .full_duplex()
            .cancellation_db()
    );

    // The programmer side of the encrypted channel (pre-shared key).
    let key = scenario.shield.as_ref().unwrap().config().session_key;
    let mut programmer = SecureSession::programmer_side(key);

    // The clinician asks for the patient's status and therapy settings.
    for (label, cmd) in [
        ("interrogate", Command::Interrogate),
        ("read therapy", Command::ReadTherapy),
        (
            "read patient record chunk 0",
            Command::ReadPatient { chunk: 0 },
        ),
        ("read stored ECG chunk 11", Command::ReadEcg { chunk: 11 }),
    ] {
        // Seal the command for the shield…
        let sealed = programmer.seal_frame(&cmd.to_payload());
        scenario
            .shield
            .as_mut()
            .unwrap()
            .relay_sealed_command(&sealed)
            .expect("authenticated command accepted");

        // …let the radio exchange happen (the shield jams the IMD's reply
        // on the air while decoding it via its antidote)…
        let _ = cmd;
        scenario.run_seconds(&mut [], 0.060);

        // …then open the sealed responses on the programmer side.
        for frame in scenario.shield.as_mut().unwrap().take_sealed_responses() {
            let plain = programmer.open_frame(&frame).expect("authentic response");
            let response = Response::from_payload(&plain).expect("parseable");
            println!("{label:>28} -> {response:?}");
        }
    }

    let shield = scenario.shield.as_ref().unwrap();
    println!(
        "\nshield relayed {} commands; decoded {} IMD replies while jamming them \
         ({} CRC failures), raised {} alarms",
        shield.stats.commands_sent,
        shield.stats.imd_frames_ok,
        shield.stats.imd_frames_crc_fail,
        shield.stats.alarms,
    );
    println!(
        "IMD battery after session: {}%",
        scenario.imd.battery().remaining_pct()
    );
    println!("\nEverything above crossed the air jammed: an eavesdropper sees ~50% BER.");
}
