//! The §5 wideband extension: when the coupling between the shield's two
//! antennas is frequency-selective (multipath), a single antidote
//! coefficient cannot cancel the jamming — but computing the antidote
//! per OFDM subcarrier restores full-depth cancellation, exactly as the
//! paper sketches ("treats each of the subcarriers as if it was an
//! independent narrowband channel").
//!
//! Run with: `cargo run --release --example wideband`

use heartbeats::channel::fading::MultipathChannel;
use heartbeats::dsp::units::amplitude_from_db;
use heartbeats::dsp::C64;
use heartbeats::shield::wideband::WidebandFullDuplex;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== wideband (multipath) antidote cancellation ==\n");
    let mut rng = StdRng::seed_from_u64(7);

    for taps in [1usize, 2, 4, 8] {
        // A multipath coupling with `taps` paths at −30 dB total power.
        let mut ch = if taps == 1 {
            MultipathChannel::flat(C64::from_polar(1.0, 0.3))
        } else {
            MultipathChannel::random_exponential(taps, 0.5, &mut rng)
        };
        for t in ch.taps.iter_mut() {
            *t = t.scale(amplitude_from_db(-30.0));
        }
        let h_self = C64::from_polar(amplitude_from_db(-3.0), 1.0);
        let mut fd = WidebandFullDuplex::new(ch, h_self, 64, 16);
        fd.estimate(32.0, &mut rng);

        let narrow = fd.measure_narrowband_cancellation(60, &mut rng);
        let wide = fd.measure_cancellation(60, &mut rng);
        println!(
            "{taps}-tap coupling:  single-coefficient antidote {narrow:>6.1} dB   \
             per-subcarrier antidote {wide:>6.1} dB"
        );
    }

    println!("\nWith one tap (flat channel) both methods agree; as multipath grows,");
    println!("only the per-subcarrier antidote keeps the receive antenna clean —");
    println!("the OFDM generalization the paper's §5 and footnote 2 describe.");
}
