#!/usr/bin/env bash
# Tracked-benchmark wrapper: builds the perf_report harness, runs it, and
# writes the next results/BENCH_N.json in the repo's benchmark trajectory.
#
#   scripts/bench.sh           # full kernels, writes results/BENCH_<next>.json
#   scripts/bench.sh --quick   # CI smoke: tiny iteration counts, prints only
#
# Checked-in BENCH files should come from a quiet machine; --quick runs are
# for validating that the harness builds and emits parseable JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hb_bench --bin perf_report

if [[ "${1:-}" == "--quick" ]]; then
    ./target/release/perf_report --quick
    exit 0
fi

mkdir -p results
next=2
while [[ -e "results/BENCH_${next}.json" ]]; do
    next=$((next + 1))
done
./target/release/perf_report --out "results/BENCH_${next}.json"
echo "benchmark trajectory: $(ls results/BENCH_*.json | tr '\n' ' ')"
