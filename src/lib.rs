//! # heartbeats — "They Can Hear Your Heartbeats" in Rust
//!
//! A full reproduction of Gollakota et al., *"They Can Hear Your
//! Heartbeats: Non-Invasive Security for Implantable Medical Devices"*
//! (SIGCOMM 2011), built on a simulated MICS-band physical layer.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`dsp`] — complex-baseband DSP (FFT, filters, shaped noise, spectra).
//! * [`phy`] — FSK/GMSK/OFDM modems, framing, streaming detection.
//! * [`channel`] — pathloss/fading models and the shared medium.
//! * [`mics`] — the 402–405 MHz band plan and FCC rules.
//! * [`crypto`] — the ChaCha20-Poly1305 programmer channel.
//! * [`imd`] — Virtuoso/Concerto device models and the programmer.
//! * [`shield`] — **the contribution**: the jammer-cum-receiver shield.
//! * [`adversary`] — eavesdroppers and active attackers.
//! * [`testbed`] — the Fig. 6 testbed and every experiment of §10–§11.
//!
//! ## Quickstart
//!
//! ```
//! use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};
//! use heartbeats::imd::commands::{Command, Response};
//!
//! // Build the paper's testbed: an implanted ICD with a shield worn over it.
//! let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(42)).build();
//!
//! // Relay interrogations through the shield; it jams the replies on the
//! // air while decoding them itself. (A few exchanges, because the
//! // shield's packet loss is small but not zero — that is Fig. 10.)
//! for _ in 0..3 {
//!     heartbeats::testbed::experiments::relay_one_exchange(
//!         &mut scenario, &mut [], Command::Interrogate);
//! }
//!
//! let responses = scenario.shield.as_mut().unwrap().take_responses();
//! assert!(responses.iter().any(|r| matches!(r, Response::Status { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hb_adversary as adversary;
pub use hb_channel as channel;
pub use hb_crypto as crypto;
pub use hb_dsp as dsp;
pub use hb_imd as imd;
pub use hb_mics as mics;
pub use hb_phy as phy;
pub use hb_shield as shield;
pub use hb_testbed as testbed;
