//! Cross-crate integration tests: the paper's headline claims, executed
//! end to end through the public facade API.

use heartbeats::adversary::active::{ActiveAttacker, AttackerConfig};
use heartbeats::adversary::eavesdropper::Eavesdropper;
use heartbeats::channel::sim::Node;
use heartbeats::crypto::session::SecureSession;
use heartbeats::imd::commands::{Command, Response};
use heartbeats::testbed::experiments::relay_one_exchange;
use heartbeats::testbed::scenario::{ScenarioBuilder, ScenarioConfig};

/// §4 + §10.2: the complete secure path — programmer seals a command, the
/// shield relays it, jams the reply, decodes it, and seals it back — while
/// a nearby eavesdropper learns nothing.
#[test]
fn full_secure_relay_with_eavesdropper() {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(101));
    let eve_ant = builder.add_at_location(1, "eve");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let key = scenario.shield.as_ref().unwrap().config().session_key;
    let mut programmer = SecureSession::programmer_side(key);

    let mut got_status = false;
    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..6 {
        let sealed = programmer.seal_frame(&Command::Interrogate.to_payload());
        scenario
            .shield
            .as_mut()
            .unwrap()
            .relay_sealed_command(&sealed)
            .unwrap();
        scenario.run_seconds(&mut [&mut eve as &mut dyn Node], 0.060);

        for frame in scenario.shield.as_mut().unwrap().take_sealed_responses() {
            let plain = programmer.open_frame(&frame).unwrap();
            if matches!(
                Response::from_payload(&plain),
                Some(Response::Status { .. })
            ) {
                got_status = true;
            }
        }
        for rec in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(rec.start_tick, &rec.bits);
            errors += (ber * rec.bits.len() as f64).round() as usize;
            total += rec.bits.len();
        }
        eve.clear();
    }
    assert!(got_status, "programmer must receive an authentic Status");
    let ber = errors as f64 / total as f64;
    assert!(
        (ber - 0.5).abs() < 0.1,
        "eavesdropper BER {ber} must be ~0.5 while the relay works"
    );
}

/// §3.1 inalterability premise: the IMD itself is stock — the shield never
/// requires any change to it. Here the same unmodified device is used with
/// and without a shield.
#[test]
fn same_imd_with_and_without_shield() {
    // Without a shield: a legitimate programmer session works directly.
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper_no_shield(55));
    let prog_ant = builder.add_at_location(2, "programmer");
    let mut scenario = builder.build();
    let channel = scenario.channel();
    let serial = scenario.imd.config().serial;
    let mut prog = heartbeats::imd::programmer::Programmer::new(
        heartbeats::imd::programmer::ProgrammerConfig {
            channel,
            ..Default::default()
        },
        prog_ant,
    );
    prog.send_command_at(0, serial, Command::Interrogate);
    scenario.run_seconds(&mut [&mut prog as &mut dyn Node], 0.06);
    assert_eq!(prog.take_responses().len(), 1);

    // With a shield: same device model, now reachable only via the relay.
    let mut scenario2 = ScenarioBuilder::new(ScenarioConfig::paper(55)).build();
    relay_one_exchange(&mut scenario2, &mut [], Command::Interrogate);
    assert_eq!(scenario2.imd.stats.commands_executed, 1);
}

/// §10.3: the protection matrix — FCC-power attacks blocked everywhere,
/// 100× attacks only succeed up close and always with the alarm.
#[test]
fn protection_matrix() {
    let fcc = AttackerConfig::commercial_programmer();
    let hot = AttackerConfig::high_power_custom();

    let run = |loc: usize, shield: bool, cfg: &AttackerConfig, seed: u64| {
        let scfg = if shield {
            ScenarioConfig::paper(seed)
        } else {
            ScenarioConfig::paper_no_shield(seed)
        };
        let mut builder = ScenarioBuilder::new(scfg);
        let ant = builder.add_at_location(loc, "atk");
        let mut scenario = builder.build();
        let mut atk = ActiveAttacker::new(cfg.clone(), ant);
        let serial = scenario.imd.config().serial;
        let ch = scenario.channel();
        atk.send_forged_command(64, ch, serial, Command::Interrogate);
        scenario.run_seconds(&mut [&mut atk as &mut dyn Node], 0.09);
        let replied = scenario.imd.stats.responses_sent > 0;
        let alarm = scenario
            .shield
            .as_ref()
            .map(|s| s.stats.alarms > 0)
            .unwrap_or(false);
        (replied, alarm)
    };

    // FCC power, 20 cm: works without shield, blocked with it.
    assert!(run(1, false, &fcc, 1).0);
    assert!(!run(1, true, &fcc, 1).0);
    // 100x power, 20 cm: beats the shield — but the alarm rings.
    let (replied, alarm) = run(1, true, &hot, 2);
    assert!(replied, "100x at 20 cm should capture the IMD");
    assert!(alarm, "every high-power success must raise the alarm");
    // 100x power, 13 m: shield wins.
    assert!(!run(7, true, &hot, 3).0);
}

/// §7: an adversary trying to alter the *shield's own* transmission makes
/// the shield switch from transmitting to jamming.
#[test]
fn concurrent_transmission_triggers_jamming() {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(88));
    let atk_ant = builder.add_at_location(1, "atk");
    let mut scenario = builder.build();
    let mut atk = ActiveAttacker::new(AttackerConfig::high_power_custom(), atk_ant);

    // Queue a relayed command, then blast energy over it mid-flight.
    scenario
        .shield
        .as_mut()
        .unwrap()
        .queue_command(Command::Interrogate);
    let ch = scenario.channel();
    atk.inject_waveform(800, ch, vec![hb_dsp::C64::ONE; 3000]);
    scenario.run_seconds(&mut [&mut atk as &mut dyn Node], 0.09);

    let shield = scenario.shield.as_ref().unwrap();
    let concurrent = shield.events.iter().any(|e| {
        matches!(
            e.kind,
            heartbeats::shield::shield::ShieldEventKind::ConcurrentSignal { .. }
        )
    });
    assert!(concurrent, "shield must detect the concurrent signal");
    assert!(
        shield.stats.active_jam_events > 0,
        "shield must switch from transmission to jamming"
    );
    // The garbled/aborted command must not have reached the IMD intact.
    assert_eq!(scenario.imd.stats.commands_executed, 0);
}

/// The encrypted channel rejects replays end to end (an adversary
/// re-sending a captured sealed command gets nowhere).
#[test]
fn sealed_command_replay_is_rejected() {
    let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(99)).build();
    let key = scenario.shield.as_ref().unwrap().config().session_key;
    let mut programmer = SecureSession::programmer_side(key);

    let sealed = programmer.seal_frame(&Command::Interrogate.to_payload());
    let shield = scenario.shield.as_mut().unwrap();
    shield.relay_sealed_command(&sealed).unwrap();
    // Replay of the identical ciphertext must fail.
    assert!(shield.relay_sealed_command(&sealed).is_err());
    // And a bit-flipped forgery must fail too.
    let mut forged = sealed.clone();
    let n = forged.len();
    forged[n - 1] ^= 1;
    assert!(shield.relay_sealed_command(&forged).is_err());
}
