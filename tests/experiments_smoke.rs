//! Smoke tests: every experiment module runs end to end at tiny effort
//! and reproduces its headline property. This pins the `full_evaluation`
//! pipeline — if any experiment silently breaks, these fail first.

use heartbeats::testbed::experiments::{self, Effort};

const SEED: u64 = 424242;

#[test]
fn fig3_smoke() {
    let r = experiments::fig3::run(Effort::tiny(), SEED);
    assert!(!r.latency_quiet_s.is_empty() && !r.latency_busy_s.is_empty());
}

#[test]
fn fig4_smoke() {
    let r = experiments::fig4::run(Effort::tiny(), SEED);
    assert!(r.tone_energy_fraction > 0.8);
}

#[test]
fn fig5_smoke() {
    let r = experiments::fig5::run(Effort::tiny(), SEED);
    assert!(r.tone_band_advantage_db > 2.0);
}

#[test]
fn fig7_smoke() {
    let r = experiments::fig7::run(Effort::tiny(), SEED);
    assert!((r.cancellation_db.mean() - 32.0).abs() < 5.0);
}

#[test]
fn fig9_smoke() {
    let ber = experiments::fig9::ber_at_location(5, 3, SEED);
    assert!((ber - 0.5).abs() < 0.1, "BER {ber}");
}

#[test]
fn fig10_smoke() {
    let (sent, decoded) = experiments::fig10::one_run(5, SEED);
    assert_eq!(sent, 5);
    assert!(decoded >= 4);
}

#[test]
fn table2_smoke() {
    let r = experiments::table2::run(Effort::tiny(), SEED);
    assert_eq!(r.cross_jammed, 0);
    assert_eq!(r.imd_jammed, r.imd_sent);
}

#[test]
fn battery_smoke() {
    let r = experiments::battery::run(Effort::tiny(), SEED);
    assert!(r.replies_per_s_absent > r.replies_per_s_present);
}
