//! Smoke tests: every experiment module runs end to end at tiny effort
//! and reproduces its headline property. This pins the `full_evaluation`
//! pipeline — if any experiment silently breaks, these fail first.

use heartbeats::testbed::experiments::{self, Effort};

const SEED: u64 = 424242;

#[test]
fn fig3_smoke() {
    let r = experiments::fig3::run(Effort::tiny(), SEED);
    assert!(!r.latency_quiet_s.is_empty() && !r.latency_busy_s.is_empty());
}

#[test]
fn fig4_smoke() {
    let r = experiments::fig4::run(Effort::tiny(), SEED);
    assert!(r.tone_energy_fraction > 0.8);
}

#[test]
fn fig5_smoke() {
    let r = experiments::fig5::run(Effort::tiny(), SEED);
    assert!(r.tone_band_advantage_db > 2.0);
}

#[test]
fn fig7_smoke() {
    let r = experiments::fig7::run(Effort::tiny(), SEED);
    assert!((r.cancellation_db.mean() - 32.0).abs() < 5.0);
}

#[test]
fn fig9_single_location_smoke() {
    // 6 packets: enough samples that the BER estimate clears the ±0.1
    // bound with margin (grow rather than loosen — ROADMAP).
    let ber = experiments::fig9::ber_at_location(5, 6, SEED);
    assert!((ber - 0.5).abs() < 0.1, "BER {ber}");
}

#[test]
fn fig10_smoke() {
    let (sent, decoded) = experiments::fig10::one_run(5, SEED);
    assert_eq!(sent, 5);
    assert!(decoded >= 4);
}

#[test]
fn fig8_smoke() {
    let r = experiments::fig8::run(Effort::tiny(), SEED);
    assert_eq!(r.ber_curve.len(), 11);
    assert_eq!(r.per_curve.len(), 11);
    for &(_, ber) in &r.ber_curve {
        assert!((0.0..=1.0).contains(&ber), "BER {ber} out of range");
    }
    // The trade-off's endpoints: more jamming hurts the eavesdropper.
    let first = r.ber_curve.first().unwrap().1;
    let last = r.ber_curve.last().unwrap().1;
    assert!(
        last >= first,
        "BER must not fall as jam power rises ({first} -> {last})"
    );
}

#[test]
fn fig9_smoke() {
    let r = experiments::fig9::run(Effort::tiny(), SEED);
    assert!(!r.ber_per_location.is_empty());
    for &(loc, ber) in &r.ber_per_location {
        assert!(
            (0.0..=1.0).contains(&ber),
            "location {loc}: BER {ber} out of range"
        );
    }
}

#[test]
fn fig11_smoke() {
    let r = experiments::fig11::run(Effort::tiny(), SEED);
    assert!(!r.absent.is_empty() && r.absent.len() == r.present.len());
    let p_absent: f64 = r.absent.iter().map(|&(_, p)| p).sum();
    let p_present: f64 = r.present.iter().map(|&(_, p)| p).sum();
    assert!(
        p_present <= p_absent,
        "shield must not increase attack success ({p_present} vs {p_absent})"
    );
}

#[test]
fn fig12_smoke() {
    let r = experiments::fig12::run(Effort::tiny(), SEED);
    assert!(!r.absent.is_empty() && r.absent.len() == r.present.len());
    let p_present: f64 = r.present.iter().map(|&(_, p)| p).sum();
    assert!(
        p_present == 0.0,
        "therapy changes must never succeed through the shield (sum {p_present})"
    );
}

#[test]
fn fig13_smoke() {
    let r = experiments::fig13::run(Effort::tiny(), SEED);
    assert!(!r.present.is_empty());
    assert!((0.0..=1.0).contains(&r.alarm_coverage_of_successes));
}

#[test]
fn table1_smoke() {
    let r = experiments::table1::run(Effort::tiny(), SEED);
    assert!(!r.successful_rssi_dbm.is_empty());
    assert!(r.min_dbm <= r.avg_dbm);
    assert!(r.std_dbm >= 0.0);
    assert!(
        r.recommended_pthresh_dbm <= r.min_dbm,
        "Pthresh {} must sit below the weakest legitimate reply {}",
        r.recommended_pthresh_dbm,
        r.min_dbm
    );
}

#[test]
fn ablation_smoke() {
    let jam = experiments::ablation::jam_shape(Effort::tiny(), SEED);
    assert!(
        jam.ber_shaped >= jam.ber_flat - 0.05,
        "shaped jamming ({}) must not trail flat jamming ({}) at equal power",
        jam.ber_shaped,
        jam.ber_flat
    );
    let sweep = experiments::ablation::cancellation_sweep(Effort::tiny(), SEED);
    assert!(!sweep.per_vs_g.is_empty());
    let ta = experiments::ablation::turnaround(Effort::tiny(), SEED);
    assert!(ta.hardware_s <= ta.software_s);
    let wear = experiments::ablation::wearability(Effort::tiny(), SEED);
    assert!(!wear.rows.is_empty());
    let rob = experiments::ablation::robustness(Effort::tiny(), SEED);
    assert!((0.0..=1.0).contains(&rob.per_clean));
    assert!((0.0..=1.0).contains(&rob.per_impaired));
}

#[test]
fn table2_smoke() {
    let r = experiments::table2::run(Effort::tiny(), SEED);
    assert_eq!(r.cross_jammed, 0);
    assert_eq!(r.imd_jammed, r.imd_sent);
}

#[test]
fn battery_smoke() {
    let r = experiments::battery::run(Effort::tiny(), SEED);
    assert!(r.replies_per_s_absent > r.replies_per_s_present);
}

#[test]
fn ward_smoke() {
    let r = experiments::ward::run(
        Effort {
            packets_per_location: 2,
            ..Effort::tiny()
        },
        SEED,
    );
    assert_eq!(r.rows.len(), 4);
    for row in &r.rows {
        // Staggered ward access must beat (or tie) the collided deadlock.
        assert!(
            row.per_a_staggered.max(row.per_b_staggered) <= row.per_collided,
            "staggered access must not lose more packets than collided at {} m",
            row.separation_m
        );
    }
}

#[test]
fn mobile_smoke() {
    let r = experiments::mobile::run(Effort::tiny(), SEED);
    assert_eq!(r.rows.len(), experiments::mobile::WAYPOINTS);
    let p_absent: f64 = r.rows.iter().map(|&(_, p, _, _)| p).sum();
    let p_present: f64 = r.rows.iter().map(|&(_, _, p, _)| p).sum();
    assert!(
        p_present <= p_absent,
        "shield must not increase the walker's success ({p_present} vs {p_absent})"
    );
}
