//! Property-based tests (proptest) over the workspace's core invariants.

use heartbeats::crypto::session::SecureSession;
use heartbeats::dsp::complex::{mean_power, C64};
use heartbeats::dsp::fft::{fft, ifft, next_pow2};
use heartbeats::imd::therapy::TherapyParams;
use heartbeats::phy::bits::{bit_errors, bits_to_bytes, bytes_to_bits};
use heartbeats::phy::crc::{append_crc16, verify_crc16};
use heartbeats::phy::fsk::{FskModem, FskParams};
use heartbeats::phy::matcher::SidMatcher;
use heartbeats::phy::packet::{Frame, FrameType, Serial, MAX_PAYLOAD};
use proptest::prelude::*;

proptest! {
    /// FFT round-trips arbitrary signals (pow2 lengths).
    #[test]
    fn fft_roundtrip(values in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..200)) {
        let n = next_pow2(values.len());
        let mut sig: Vec<C64> = values.iter().map(|&(re, im)| C64::new(re, im)).collect();
        sig.resize(n, C64::ZERO);
        let back = ifft(&fft(&sig));
        for (a, b) in sig.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// Parseval: energy is preserved (up to the 1/N convention).
    #[test]
    fn fft_parseval(values in prop::collection::vec((-1e2f64..1e2, -1e2f64..1e2), 2..128)) {
        let n = next_pow2(values.len());
        let mut sig: Vec<C64> = values.iter().map(|&(re, im)| C64::new(re, im)).collect();
        sig.resize(n, C64::ZERO);
        let spec = fft(&sig);
        let te: f64 = sig.iter().map(|s| s.norm_sq()).sum();
        let fe: f64 = spec.iter().map(|s| s.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
    }

    /// Bit/byte packing round-trips.
    #[test]
    fn bits_bytes_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    /// CRC-16 detects every 1- and 2-bit corruption.
    #[test]
    fn crc_detects_small_corruption(
        data in prop::collection::vec(any::<u8>(), 1..64),
        flip1 in 0usize..512,
        flip2 in 0usize..512,
    ) {
        let mut framed = data;
        append_crc16(&mut framed);
        prop_assert!(verify_crc16(&framed));
        let nbits = framed.len() * 8;
        let (a, b) = (flip1 % nbits, flip2 % nbits);
        let mut corrupted = framed.clone();
        corrupted[a / 8] ^= 1 << (a % 8);
        if b != a {
            corrupted[b / 8] ^= 1 << (b % 8);
        }
        prop_assert!(!verify_crc16(&corrupted));
    }

    /// Frames round-trip through bytes and through the FSK modem.
    #[test]
    fn frame_roundtrip_any_payload(
        serial in prop::array::uniform10(any::<u8>()),
        ftype in 1u8..4,
        seq in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
    ) {
        let f = Frame::new(Serial(serial), FrameType::from_byte(ftype), seq, payload);
        prop_assert_eq!(&Frame::from_bytes(&f.to_bytes()).unwrap(), &f);
        let modem = FskModem::new(FskParams::mics_default());
        let rx = modem.receive_frame(&modem.modulate(&f.to_bits())).unwrap();
        prop_assert_eq!(rx, f);
    }

    /// FSK modulation is always constant-envelope (transmitter-safe).
    #[test]
    fn fsk_constant_envelope(bits in prop::collection::vec(0u8..2, 1..64)) {
        let modem = FskModem::new(FskParams::mics_default());
        let sig = modem.modulate(&bits);
        for s in &sig {
            prop_assert!((s.abs() - 1.0).abs() < 1e-9);
        }
        prop_assert!((mean_power(&sig) - 1.0).abs() < 1e-9);
    }

    /// The Sid matcher fires exactly when Hamming distance <= bthresh.
    #[test]
    fn sid_matcher_matches_hamming(
        pattern in prop::collection::vec(0u8..2, 8..64),
        flips in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
        bthresh in 0usize..6,
    ) {
        let mut received = pattern.clone();
        for f in &flips {
            let i = f.index(received.len());
            received[i] ^= 1;
        }
        let distance = bit_errors(&pattern, &received);
        let mut m = SidMatcher::new(pattern, bthresh);
        let mut fired = false;
        for &b in &received {
            fired |= m.push(b);
        }
        prop_assert_eq!(fired, distance <= bthresh);
    }

    /// The secure session round-trips any payload and rejects any replay.
    #[test]
    fn session_roundtrip_and_replay(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..64), 1..8)
    ) {
        let key = [7u8; 32];
        let mut shield = SecureSession::shield_side(key);
        let mut prog = SecureSession::programmer_side(key);
        let mut frames = Vec::new();
        for p in &payloads {
            let f = prog.seal_frame(p);
            prop_assert_eq!(&shield.open_frame(&f).unwrap(), p);
            frames.push(f);
        }
        for f in &frames {
            prop_assert!(shield.open_frame(f).is_err());
        }
    }

    /// Therapy parameters round-trip and validation is stable.
    #[test]
    fn therapy_roundtrip(
        mode in 0u8..4,
        rate in any::<u8>(),
        amp in any::<u8>(),
        width in any::<u8>(),
        shock in any::<u8>(),
    ) {
        let bytes = [mode, rate, amp, width, shock];
        if let Some(p) = TherapyParams::from_bytes(&bytes) {
            prop_assert_eq!(p.to_bytes(), bytes);
            // validate() must never panic, only judge.
            let _ = p.validate();
        }
    }
}
