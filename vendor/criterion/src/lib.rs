//! Offline, API-compatible subset of `criterion`.
//!
//! This workspace builds without registry access, so the benchmark API the
//! `hb_bench` crate uses is vendored here: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (including the `name/config/targets` form).
//!
//! Instead of criterion's full statistical machinery this harness does a
//! short warm-up, then timed batches until either `sample_size` batches or
//! the measurement-time budget elapse, and prints min/mean per-iteration
//! times. Good enough to compare hot paths run-over-run; not a substitute
//! for real criterion's outlier analysis.
//!
//! `cargo test` runs bench targets with `--test`: in that mode each
//! benchmark body executes exactly once (a smoke test) and no timing is
//! reported, mirroring real criterion's behavior.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: collects timed samples for named functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches to record per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            // Smoke-test mode: one execution, no timing.
            f(&mut b);
            println!("test bench {name} ... ok");
            return self;
        }

        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ~1ms, so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }

        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  mean {:>12}  ({} samples x {} iters)",
            format_time(min),
            format_time(mean),
            samples.len(),
            iters
        );
        self
    }

    /// Final hook (report writing in real criterion); a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this batch, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut ran = 0u32;
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        c.test_mode = true;
        c.bench_function("probe", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2e-3), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 us");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
