//! Offline, API-compatible subset of `proptest`.
//!
//! This workspace builds without registry access, so the slice of the
//! proptest API its test suites use is vendored here: the [`proptest!`]
//! macro, `prop_assert*`/`prop_assume!`, [`strategy::Strategy`] with
//! `prop_map`, range/tuple/`any` strategies, `prop::collection::vec`,
//! `prop::array::uniform*`, and `prop::sample::Index`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`
//!   where available) but is not minimized.
//! * **Deterministic by default.** Each test derives its RNG seed from
//!   the test name, so runs are reproducible; set `PROPTEST_SEED` to vary.
//! * **Case count** comes from `PROPTEST_CASES` (default 64 — small
//!   enough that the whole workspace suite stays fast).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`collection`, `array`, `sample`).
pub mod prop {
    /// Collection strategies (`vec`).
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
        pub use crate::strategy::VecStrategy;
    }

    /// Fixed-size array strategies (`uniform4` … `uniform32`).
    pub mod array {
        pub use crate::strategy::array::*;
    }

    /// Sampling helpers (`Index`).
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

/// Everything a proptest suite imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Index, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` (the `#[test]` attribute is written by the caller, matched as
/// a meta, and re-emitted) that runs the body over `PROPTEST_CASES`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut rng = $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut ran = 0u32;
            let mut rejected = 0u32;
            while ran < cases {
                if rejected > cases * 32 {
                    panic!(
                        "proptest '{}': too many rejected cases ({} rejections for {} target cases)",
                        stringify!($name), rejected, cases
                    );
                }
                // Generation is deterministic, so a pre-generation snapshot
                // of the RNG lets failure paths re-derive the inputs for the
                // report; passing cases never pay for Debug-formatting.
                let rng_snapshot = rng.clone();
                let render_inputs = |r: &mut $crate::test_runner::TestRng| {
                    let mut s = ::std::string::String::new();
                    $(
                        let v = $crate::strategy::Strategy::generate(&$strat, r);
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&$crate::test_runner::debug_fallback(&v));
                        s.push_str("; ");
                    )+
                    s
                };
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    // unreachable_code: bodies may end in a panic on purpose.
                    #[allow(unreachable_code)]
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body;
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        ran += 1;
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    )) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    )) => {
                        let mut snap = rng_snapshot;
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name), ran, msg, render_inputs(&mut snap)
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        let mut snap = rng_snapshot;
                        panic!(
                            "proptest '{}' panicked after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name), ran,
                            $crate::test_runner::panic_message(&payload),
                            render_inputs(&mut snap)
                        );
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body; failures are reported
/// with the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` == `{}`\n  left: {}\n  right: {}",
            stringify!($a),
            stringify!($b),
            $crate::test_runner::debug_fallback(a),
            $crate::test_runner::debug_fallback(b)
        );
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{}` != `{}`\n  both: {}",
            stringify!($a),
            stringify!($b),
            $crate::test_runner::debug_fallback(a)
        );
    }};
}

/// Discards the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
