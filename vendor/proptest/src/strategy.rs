//! Value-generation strategies: the input half of the proptest API.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a pure generator over a seeded RNG.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; kept cheap by resampling (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Tuples.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_uniform!(u8, u16, u32, u64, usize, bool);

impl Arbitrary for f64 {
    /// Finite, with a mix of magnitudes (no NaN/inf: the DSP invariants
    /// under test are about finite signals).
    fn arbitrary(rng: &mut StdRng) -> f64 {
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------------

/// A length specification for [`collection_vec`]: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Fixed-size array strategies, `prop::array::uniformN(element)`.
pub mod array {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// Strategy for arrays of this length.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }
    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform8 => 8, uniform10 => 10, uniform12 => 12, uniform16 => 16,
        uniform24 => 24, uniform32 => 32
    );
}

// ---------------------------------------------------------------------------
// Index.
// ---------------------------------------------------------------------------

/// A deferred index into a collection of then-unknown length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Resolves against a collection of length `len` (must be non-zero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(rng.gen::<usize>() >> 1)
    }
}
