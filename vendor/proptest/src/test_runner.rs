//! Runner support for the [`proptest!`](crate::proptest) macro: case
//! counts, per-test deterministic seeding, and the case-level error type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving generation (named so the macro can refer to it).
pub type TestRng = StdRng;

/// How a single generated case can fail.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and is regenerated.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Number of cases per property, from `PROPTEST_CASES` (default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A deterministic RNG for one property test.
///
/// The seed is the FNV-1a hash of the fully-qualified test name, XORed
/// with `PROPTEST_SEED` when set — reproducible by default, steerable
/// when hunting.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Some(extra) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        h ^= extra;
    }
    StdRng::seed_from_u64(h)
}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Formats a value for failure reports.
pub fn debug_fallback<T: std::fmt::Debug>(v: &T) -> String {
    let s = format!("{v:?}");
    if s.len() > 400 {
        let head: String = s.chars().take(400).collect();
        format!("{}… ({} chars)", head, s.len())
    } else {
        s
    }
}
