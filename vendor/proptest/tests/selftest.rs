//! The vendored runner's own contract: failures and panics both report
//! the generated inputs; `prop_assume!` regenerates instead of failing.

use proptest::prelude::*;

proptest! {
    #[test]
    fn passing_property(x in 0u8..10, v in prop::collection::vec(any::<u8>(), 0..8)) {
        prop_assert!(x < 10);
        prop_assert!(v.len() < 8);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_property_reports_inputs(x in 5u8..6) {
        prop_assert!(x != 5, "x is always 5");
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn panicking_body_reports_inputs(x in 0u8..10) {
        let _ = x;
        panic!("library assert fired");
    }

    #[test]
    fn assume_discards_without_failing(x in 0u8..4) {
        prop_assume!(x > 0);
        prop_assert!(x > 0);
    }
}
