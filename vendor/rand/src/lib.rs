//! Offline, API-compatible subset of `rand` 0.8.
//!
//! This workspace builds in an environment with no access to crates.io, so
//! the exact subset of the `rand` 0.8 API the codebase uses is vendored
//! here: [`RngCore`], [`Rng`], [`SeedableRng`], and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — fully
//! deterministic for a given `seed_from_u64` input, which is what the
//! simulator's reproducibility story relies on. It makes no attempt to be
//! cryptographically secure (neither does the simulation's use of it; the
//! crypto crate has its own primitives).

#![forbid(unsafe_code)]

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with consecutive `next_u64` draws — the same stream,
    /// in the same order, as calling [`RngCore::next_u64`] `dest.len()`
    /// times. The default loops per draw; generators with small state may
    /// override with a register-resident block walk, but the stream must
    /// stay bit-identical (the simulator's fixed-consumption noise
    /// contracts are pinned to it).
    fn fill_u64(&mut self, dest: &mut [u64]) {
        for v in dest.iter_mut() {
            *v = self.next_u64();
        }
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A type that can be sampled uniformly from an `RngCore` (the subset of
/// rand's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits (same precision as rand).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the simulator's span sizes
                // (all far below 2^64).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value uniformly (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as rand's real `StdRng` (ChaCha12), but the
    /// simulator only requires determinism for a fixed seed, not a
    /// particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Batched draw: the identical xoshiro256++ recurrence with the
        /// four state words held in locals for the whole block, so they
        /// stay in registers instead of round-tripping through `self` on
        /// every draw. Bit-for-bit the same stream as `next_u64`.
        fn fill_u64(&mut self, dest: &mut [u64]) {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            for v in dest.iter_mut() {
                *v = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
                let t = s1 << 17;
                s2 ^= s0;
                s3 ^= s1;
                s1 ^= s2;
                s0 ^= s3;
                s2 ^= t;
                s3 = s3.rotate_left(45);
            }
            self.s = [s0, s1, s2, s3];
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
        }
    }

    #[test]
    fn fill_u64_matches_per_call_draws() {
        // The batched walk must produce the identical stream, at any
        // block size and across mixed per-call/batched use.
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let mut a = StdRng::seed_from_u64(1234);
            let mut b = StdRng::seed_from_u64(1234);
            let mut block = vec![0u64; n];
            a.fill_u64(&mut block);
            for (i, v) in block.iter().enumerate() {
                assert_eq!(*v, b.next_u64(), "draw {i} of {n}");
            }
            // State after the block matches too.
            assert_eq!(a.next_u64(), b.next_u64(), "state after n={n}");
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
